// src/graph: provenance-graph export + slicing. Golden backward/forward
// slices for the multi-hop scenarios, the finding->source reachability
// property over the whole injection corpus, FPG round-tripping, farm
// --graph-out worker-count determinism, the analyst-text <-> graph node-id
// cross-links, and the 255-saturation pin behind the rule grammar's
// distinct-netflows/process-count thresholds.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "attacks/scenarios.h"
#include "core/analyst.h"
#include "core/rules.h"
#include "farm/farm.h"
#include "graph/graph.h"
#include "graph/slice.h"

namespace faros {
namespace {

using graph::NodeType;

/// Record + replay-under-FAROS, then snapshot everything the graph tests
/// compare: the graph itself plus the analyst text it must cross-link to.
struct Analyzed {
  graph::ProvGraph g;
  std::vector<core::Finding> findings;
  std::string taint_map_text;
  core::FindingSummary summary;
  bool ok = false;
};

Analyzed analyze_graph(attacks::Scenario& sc,
                       const core::Options& opts = {}) {
  Analyzed out;
  auto rec = attacks::record_run(sc);
  EXPECT_TRUE(rec.ok()) << sc.name();
  if (!rec.ok()) return out;
  os::Machine m;
  core::FarosEngine engine(m.kernel(), opts);
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  EXPECT_TRUE(m.boot().ok());
  EXPECT_TRUE(sc.setup(m).ok());
  m.load_replay(rec.value().log);
  m.run(sc.budget());
  out.g = graph::build_graph(engine, m.kernel());
  out.findings = engine.findings();
  out.taint_map_text = core::taint_map(engine, m.kernel());
  out.summary = core::summarize_findings(engine.findings());
  out.ok = true;
  return out;
}

std::vector<std::string> source_refs(const graph::ProvGraph& g,
                                     const graph::Slice& s) {
  std::vector<std::string> out;
  for (u32 id : s.sources) out.push_back(g.ref(id));
  return out;
}

std::set<std::string> hop_process_names(const graph::ProvGraph& g,
                                        const graph::Slice& s) {
  std::set<std::string> out;
  for (const auto& hop : s.hops) {
    if (g.nodes[hop.node].type == NodeType::kProcess) {
      out.insert(g.nodes[hop.node].name);
    }
  }
  return out;
}

graph::Slice backward_from_finding(const graph::ProvGraph& g, u32 index) {
  auto root = g.node_id(NodeType::kFinding, index);
  EXPECT_TRUE(root.has_value());
  graph::SliceOptions opts;
  return graph::slice(g, root.value_or(0), opts);
}

// --- golden backward/forward slices ----------------------------------------

TEST(GraphSlice, ThreadHijackBackwardReachesExactlyTheOriginFlow) {
  attacks::ThreadHijackScenario sc;
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);
  ASSERT_GE(a.g.count(NodeType::kFinding), 1u);
  EXPECT_EQ(a.g.nodes[*a.g.node_id(NodeType::kFinding, 0)].name,
            "netflow-export-confluence");

  graph::Slice s = backward_from_finding(a.g, 0);
  EXPECT_FALSE(s.truncated);
  // The one true origin and zero spurious sources: the hijacked bytes came
  // off the wire, never through a file.
  EXPECT_EQ(source_refs(a.g, s), (std::vector<std::string>{"netflow:0"}));
  // Both chain processes are on the slice: the downloader and the victim
  // the payload was written into.
  std::set<std::string> procs = hop_process_names(a.g, s);
  EXPECT_TRUE(procs.count("hijacker.exe"));
  EXPECT_TRUE(procs.count("taskhost.exe"));
}

TEST(GraphSlice, ThreadHijackForwardFromFlowReachesFlaggedRegion) {
  attacks::ThreadHijackScenario sc;
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);
  auto root = a.g.node_id(NodeType::kNetflow, 0);
  ASSERT_TRUE(root.has_value());
  graph::SliceOptions opts;
  opts.forward = true;
  graph::Slice s = graph::slice(a.g, *root, opts);

  bool saw_victim_region = false, saw_finding = false;
  for (const auto& hop : s.hops) {
    const graph::Node& n = a.g.nodes[hop.node];
    if (n.type == NodeType::kRegion &&
        n.name.find("taskhost.exe") != std::string::npos) {
      saw_victim_region = true;
    }
    if (n.type == NodeType::kFinding) saw_finding = true;
  }
  EXPECT_TRUE(saw_victim_region);
  EXPECT_TRUE(saw_finding);
}

TEST(GraphSlice, InjectionRelayBackwardSpansAllThreeHops) {
  attacks::InjectionRelayScenario sc;
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);
  ASSERT_GE(a.findings.size(), 1u);
  // Only the final victim walks export tables, so the flag lands in C.
  EXPECT_EQ(a.findings[0].proc.name, "conhost.exe");

  graph::Slice s = backward_from_finding(a.g, 0);
  EXPECT_FALSE(s.truncated);
  EXPECT_EQ(source_refs(a.g, s), (std::vector<std::string>{"netflow:0"}));
  // A -> B -> C: all three processes rode the payload's provenance.
  std::set<std::string> procs = hop_process_names(a.g, s);
  EXPECT_TRUE(procs.count("stage0.exe"));
  EXPECT_TRUE(procs.count("relay.exe"));
  EXPECT_TRUE(procs.count("conhost.exe"));
}

TEST(GraphSlice, MultiStageC2BackwardFindsBothFlowsAndNoFiles) {
  core::Options opts;
  auto rules = core::parse_ruleset_json(R"({"rules":[{
      "id": "multi-stage-c2", "trigger": "tainted-load", "action": "flag",
      "when": ["fetch distinct-netflows>=2"]}]})");
  ASSERT_TRUE(rules.ok()) << rules.error().message;
  opts.rules = std::move(rules).take();

  attacks::MultiStageC2Scenario sc;
  Analyzed a = analyze_graph(sc, opts);
  ASSERT_TRUE(a.ok);
  ASSERT_GE(a.g.count(NodeType::kFinding), 1u);

  graph::Slice s = backward_from_finding(a.g, 0);
  // Exactly the two C2 endpoints (payload server + key server), no file
  // sources: the whole chain lived in memory.
  EXPECT_EQ(source_refs(a.g, s),
            (std::vector<std::string>{"netflow:0", "netflow:1"}));
}

// --- reachability property over the whole injection corpus -----------------

TEST(GraphSlice, EveryInjectionFindingBackwardSlicesToASource) {
  for (const auto& e : attacks::injection_corpus()) {
    auto sc = e.make();
    Analyzed a = analyze_graph(*sc);
    ASSERT_TRUE(a.ok) << e.name;
    size_t findings = a.g.count(NodeType::kFinding);
    ASSERT_GE(findings, 1u) << e.name;
    for (u32 i = 0; i < findings; ++i) {
      const graph::Node& fn = a.g.nodes[*a.g.node_id(NodeType::kFinding, i)];
      if ((fn.c >> 1) & 1) continue;  // whitelisted: no claim
      graph::Slice s = backward_from_finding(a.g, i);
      EXPECT_FALSE(s.sources.empty())
          << e.name << " finding:" << i << " (" << fn.name
          << ") has no netflow/file origin";
      for (u32 src : s.sources) {
        NodeType t = a.g.nodes[src].type;
        EXPECT_TRUE(t == NodeType::kNetflow || t == NodeType::kFile)
            << e.name << " finding:" << i;
      }
    }
  }
}

// --- binary format ----------------------------------------------------------

TEST(GraphFormat, SerializeDeserializeRoundTripsByteForByte) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);
  ASSERT_FALSE(a.g.nodes.empty());

  Bytes bytes = graph::serialize(a.g);
  auto back = graph::deserialize(ByteSpan(bytes.data(), bytes.size()));
  ASSERT_TRUE(back.ok()) << back.error().message;
  const graph::ProvGraph& g2 = back.value();

  ASSERT_EQ(g2.nodes.size(), a.g.nodes.size());
  for (size_t i = 0; i < g2.nodes.size(); ++i) {
    EXPECT_EQ(g2.nodes[i].type, a.g.nodes[i].type);
    EXPECT_EQ(g2.nodes[i].index, a.g.nodes[i].index);
    EXPECT_EQ(g2.nodes[i].name, a.g.nodes[i].name);
    EXPECT_EQ(g2.nodes[i].detail, a.g.nodes[i].detail);
    EXPECT_EQ(g2.nodes[i].a, a.g.nodes[i].a);
    EXPECT_EQ(g2.nodes[i].b, a.g.nodes[i].b);
    EXPECT_EQ(g2.nodes[i].c, a.g.nodes[i].c);
  }
  ASSERT_EQ(g2.edges.size(), a.g.edges.size());
  for (size_t i = 0; i < g2.edges.size(); ++i) {
    EXPECT_EQ(g2.edges[i].type, a.g.edges[i].type);
    EXPECT_EQ(g2.edges[i].src, a.g.edges[i].src);
    EXPECT_EQ(g2.edges[i].dst, a.g.edges[i].dst);
    EXPECT_EQ(g2.edges[i].aux, a.g.edges[i].aux);
  }
  EXPECT_EQ(graph::serialize(g2), bytes);
}

TEST(GraphFormat, DeserializeRejectsGarbage) {
  Bytes junk{'n', 'o', 't', ' ', 'a', ' ', 'g', 'r', 'a', 'p', 'h'};
  EXPECT_FALSE(graph::deserialize(ByteSpan(junk.data(), junk.size())).ok());
  Bytes empty;
  EXPECT_FALSE(graph::deserialize(ByteSpan(empty.data(), 0)).ok());
}

TEST(GraphFormat, DeserializeRejectsEveryTruncationCleanly) {
  // An FPG1 file carries no trailing padding: every strict prefix is
  // missing data and must come back as a clean error — never a crash, an
  // over-allocation, or a silently short graph.
  attacks::ThreadHijackScenario sc;
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);
  Bytes bytes = graph::serialize(a.g);
  ASSERT_GT(bytes.size(), 64u);

  for (size_t len = 0; len < bytes.size(); ++len) {
    auto r = graph::deserialize(ByteSpan(bytes.data(), len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " of " << bytes.size()
                         << " bytes parsed as a graph";
    if (r.ok()) break;
  }
}

TEST(GraphFormat, DeserializeSurvivesDeterministicBitFlips) {
  // Single-bit corruption anywhere in the file must either parse (a flip
  // inside string payload or node payload words can be benign) or fail
  // with an error — the ASan job runs this, so any out-of-bounds read or
  // unchecked allocation provoked by a corrupt count surfaces here.
  attacks::ThreadHijackScenario sc;
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);
  const Bytes bytes = graph::serialize(a.g);
  ASSERT_FALSE(bytes.empty());

  u64 lcg = 0x243f6a8885a308d3ull;  // fixed seed: the corpus is deterministic
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  };
  size_t rejected = 0;
  for (int i = 0; i < 512; ++i) {
    Bytes mut = bytes;
    const size_t pos = static_cast<size_t>(next() % mut.size());
    mut[pos] ^= static_cast<u8>(1u << (next() % 8));
    auto r = graph::deserialize(ByteSpan(mut.data(), mut.size()));
    if (!r.ok()) {
      ++rejected;
      EXPECT_FALSE(r.error().message.empty());
    }
  }
  // Flips in the magic, counts, string ids or edge endpoints are fatal, so
  // a healthy validator rejects a solid share of them.
  EXPECT_GT(rejected, 0u);
}

TEST(GraphFormat, ParseNodeRefAcceptsCanonicalAndRejectsJunk) {
  auto ok = graph::parse_node_ref("finding:0");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().first, NodeType::kFinding);
  EXPECT_EQ(ok.value().second, 0u);
  ok = graph::parse_node_ref("netflow:12");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().first, NodeType::kNetflow);
  EXPECT_EQ(ok.value().second, 12u);
  EXPECT_FALSE(graph::parse_node_ref("bogus:1").ok());
  EXPECT_FALSE(graph::parse_node_ref("netflow").ok());
  EXPECT_FALSE(graph::parse_node_ref("netflow:").ok());
  EXPECT_FALSE(graph::parse_node_ref("netflow:abc").ok());
  EXPECT_FALSE(graph::parse_node_ref("").ok());
}

// --- farm --graph-out -------------------------------------------------------

Bytes read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

TEST(GraphExport, FarmArtifactsByteIdenticalAcrossWorkerCounts) {
  auto entries = attacks::injection_corpus();
  entries.resize(4);  // a representative shard keeps the test quick
  auto make_jobs = [&] {
    std::vector<farm::JobSpec> jobs;
    for (const auto& e : entries) {
      farm::JobSpec s;
      s.name = e.name;
      s.category = e.category;
      s.expect_flagged = e.expect_flagged;
      s.make = e.make;
      jobs.push_back(std::move(s));
    }
    return jobs;
  };

  std::filesystem::path base = ::testing::TempDir();
  std::filesystem::path d1 = base / "faros_graph_w1";
  std::filesystem::path d4 = base / "faros_graph_w4";
  std::filesystem::remove_all(d1);
  std::filesystem::remove_all(d4);

  farm::FarmConfig c1;
  c1.workers = 1;
  c1.graph_out = d1.string();
  farm::TriageReport r1 = farm::Farm(c1).run(make_jobs());

  farm::FarmConfig c4;
  c4.workers = 4;
  c4.graph_out = d4.string();
  farm::TriageReport r4 = farm::Farm(c4).run(make_jobs());

  ASSERT_EQ(r1.results.size(), entries.size());
  ASSERT_EQ(r4.results.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(r1.results[i].graph_built) << entries[i].name;
    EXPECT_GT(r1.results[i].graph_nodes, 0u);
    EXPECT_EQ(r1.results[i].graph_nodes, r4.results[i].graph_nodes);
    EXPECT_EQ(r1.results[i].graph_edges, r4.results[i].graph_edges);
    EXPECT_EQ(r1.results[i].graph_bytes, r4.results[i].graph_bytes);

    Bytes b1 = read_file(d1 / (entries[i].name + ".fpg"));
    Bytes b4 = read_file(d4 / (entries[i].name + ".fpg"));
    ASSERT_FALSE(b1.empty()) << entries[i].name;
    EXPECT_EQ(b1, b4) << entries[i].name;
    EXPECT_EQ(b1.size(), r1.results[i].graph_bytes);

    // The artifact loads back into a queryable graph.
    auto g = graph::deserialize(ByteSpan(b1.data(), b1.size()));
    ASSERT_TRUE(g.ok()) << entries[i].name;
    EXPECT_EQ(g.value().nodes.size(), r1.results[i].graph_nodes);
  }
  std::filesystem::remove_all(d1);
  std::filesystem::remove_all(d4);
}

// --- analyst text <-> graph node-id cross-links -----------------------------

TEST(GraphAnalyst, TaintMapAndSummaryShareTheGraphIdNamespace) {
  attacks::ThreadHijackScenario sc;
  Analyzed a = analyze_graph(sc);
  ASSERT_TRUE(a.ok);

  // Every "region:<k>" label in the taint map is a graph region node, and
  // the counts agree — the text and the graph walk the same state in the
  // same order.
  size_t region_labels = 0;
  for (size_t pos = a.taint_map_text.find("region:");
       pos != std::string::npos;
       pos = a.taint_map_text.find("region:", pos + 1)) {
    ++region_labels;
  }
  EXPECT_EQ(region_labels, a.g.count(NodeType::kRegion));
  for (u32 k = 0; k < a.g.count(NodeType::kRegion); ++k) {
    EXPECT_NE(a.taint_map_text.find("region:" + std::to_string(k)),
              std::string::npos)
        << "taint map lost region:" << k;
  }

  // Every summary ref "finding:<i> ..." resolves to a graph finding node
  // whose policy matches; and the round trip back from the graph finds the
  // ref in the rendered summary.
  ASSERT_EQ(a.summary.refs.size(), a.g.count(NodeType::kFinding));
  std::string rendered = core::render_summary(a.summary);
  for (u32 i = 0; i < a.summary.refs.size(); ++i) {
    const std::string& ref = a.summary.refs[i];
    std::string prefix = "finding:" + std::to_string(i) + " ";
    ASSERT_EQ(ref.rfind(prefix, 0), 0u) << ref;
    auto id = a.g.node_id(NodeType::kFinding, i);
    ASSERT_TRUE(id.has_value());
    EXPECT_NE(ref.find(a.g.nodes[*id].name), std::string::npos)
        << ref << " vs policy " << a.g.nodes[*id].name;
    EXPECT_NE(rendered.find(ref), std::string::npos);
  }
}

// --- the 255 saturation behind the rule-grammar thresholds ------------------

TEST(GraphRules, DistinctTagCountersSaturateAt255) {
  // ProvStore meta counters are u8 and saturate: a list can hold >255
  // distinct netflow tags, but netflow_count/process_count report at most
  // 255. The rule grammar documents that distinct-netflows>=N / N > 255
  // can never fire; this pins the boundary those docs rely on.
  core::ProvStore store(/*cap=*/400);
  std::vector<core::ProvTag> flows;
  for (u16 i = 0; i < 300; ++i) flows.push_back(core::ProvTag::netflow(i));
  core::ProvListId id = store.intern(flows);
  ASSERT_NE(id, core::kEmptyProv);
  EXPECT_EQ(store.get(id).size(), 300u);  // the list itself is not clipped
  EXPECT_EQ(store.netflow_count(id), 255u);

  std::vector<core::ProvTag> procs;
  for (u16 i = 0; i < 300; ++i) procs.push_back(core::ProvTag::process(i));
  core::ProvListId pid = store.intern(procs);
  EXPECT_EQ(store.process_count(pid), 255u);

  // The grammar enforces this boundary at load time: 255 (the saturation
  // value, still reachable) parses, while a >255 threshold could never
  // fire and is rejected with an error naming the rule instead of
  // shipping a silently dead policy (see test_rules.cpp for the message
  // contents).
  EXPECT_TRUE(core::parse_ruleset_json(
                  R"({"rules":[{"id":"edge","trigger":"tainted-load",
                      "action":"flag","when":["fetch distinct-netflows>=255"]}]})")
                  .ok());
  EXPECT_FALSE(core::parse_ruleset_json(
                   R"({"rules":[{"id":"never","trigger":"tainted-load",
                       "action":"flag","when":["fetch distinct-netflows>=300"]}]})")
                   .ok());
}

}  // namespace
}  // namespace faros
