// End-to-end integration: the six in-memory-injection scenarios must be
// flagged with the right policies and provenance chains; record/replay must
// be deterministic.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "core/report.h"

namespace faros {
namespace {

using attacks::AnalyzedRun;
using attacks::ReflectiveDllScenario;
using attacks::ReflectiveVariant;

bool console_contains(const std::vector<std::string>& console,
                      const std::string& needle) {
  for (const auto& line : console) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ReflectiveDllInjection, MeterpreterVariantIsFlagged) {
  ReflectiveDllScenario sc(ReflectiveVariant::kMeterpreter);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  const AnalyzedRun& r = run.value();

  // The injection actually happened: the victim popped the message.
  EXPECT_TRUE(console_contains(r.replayed.console,
                               "reflective payload in notepad.exe"))
      << "console:\n";
  EXPECT_TRUE(r.flagged) << r.report;
  ASSERT_FALSE(r.findings.empty());

  // The flagged instruction executes inside the victim.
  bool in_victim = false;
  bool netflow_policy = false;
  for (const auto& f : r.findings) {
    if (f.proc.name == "notepad.exe") in_victim = true;
    if (f.policy == "netflow-export-confluence") netflow_policy = true;
  }
  EXPECT_TRUE(in_victim);
  EXPECT_TRUE(netflow_policy);
  EXPECT_TRUE(r.recorded.traps.empty()) << r.recorded.traps[0];
}

TEST(ReflectiveDllInjection, ReverseTcpDnsSelfInjectionIsFlagged) {
  ReflectiveDllScenario sc(ReflectiveVariant::kReverseTcpDns);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged) << run.value().report;
  EXPECT_TRUE(console_contains(run.value().replayed.console,
                               "reflective payload in inject_client.exe"));
  EXPECT_TRUE(run.value().recorded.traps.empty())
      << run.value().recorded.traps[0];
}

TEST(ReflectiveDllInjection, BypassUacVariantIsFlaggedInFirefox) {
  ReflectiveDllScenario sc(ReflectiveVariant::kBypassUac);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged);
  bool in_firefox = false;
  for (const auto& f : run.value().findings) {
    if (f.proc.name == "firefox.exe") in_firefox = true;
  }
  EXPECT_TRUE(in_firefox) << run.value().report;
}

TEST(ProcessHollowing, IsFlaggedViaCrossProcessPolicy) {
  attacks::HollowingScenario sc;
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged) << run.value().report;
  EXPECT_TRUE(console_contains(run.value().replayed.console,
                               "svchost hollowed"));
  bool cross_policy_in_svchost = false;
  for (const auto& f : run.value().findings) {
    if (f.policy == "cross-process-export-confluence" &&
        f.proc.name == "svchost.exe") {
      cross_policy_in_svchost = true;
    }
  }
  EXPECT_TRUE(cross_policy_in_svchost) << run.value().report;
  EXPECT_TRUE(run.value().recorded.traps.empty())
      << run.value().recorded.traps[0];
}

TEST(CodeInjection, DarkCometAnalogueIsFlagged) {
  attacks::RatInjectionScenario sc("darkcomet");
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged) << run.value().report;
  bool in_explorer = false;
  for (const auto& f : run.value().findings) {
    if (f.proc.name == "explorer.exe") in_explorer = true;
  }
  EXPECT_TRUE(in_explorer);
  // The RAT also exercised the benign command paths.
  EXPECT_TRUE(console_contains(run.value().replayed.console, "helper done"));
}

TEST(Workloads, BenignBehaviorSampleIsNotFlagged) {
  attacks::BehaviorScenario sc(
      "TeamViewer",
      {attacks::Behavior::kIdle, attacks::Behavior::kRun,
       attacks::Behavior::kRemoteDesktop, attacks::Behavior::kDownload});
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_FALSE(run.value().flagged) << run.value().report;
  EXPECT_TRUE(run.value().recorded.traps.empty())
      << run.value().recorded.traps[0];
  EXPECT_TRUE(run.value().replayed.stats.all_exited);
}

TEST(Workloads, LinkingJitWorkloadIsAFalsePositive) {
  attacks::JitScenario sc("pulleysystem", "java.exe", /*linking=*/true);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged) << run.value().report;  // the known FP
}

TEST(Workloads, ComputeJitWorkloadIsNotFlagged) {
  attacks::JitScenario sc("acceleration", "java.exe", /*linking=*/false);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_FALSE(run.value().flagged) << run.value().report;
  EXPECT_TRUE(run.value().recorded.traps.empty())
      << run.value().recorded.traps[0];
}

}  // namespace
}  // namespace faros
