// Loopback (guest-to-guest) taint propagation: the network stack carries
// provenance across sockets via per-segment shadows, so a payload relayed
// through an internal service still carries its C2 origin when it runs.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "core/report.h"

namespace faros {
namespace {

TEST(IpcRelay, LoopbackSendDeliversToBoundSocket) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  auto& net = m.kernel().net();
  os::SocketId server = net.create(1);
  ASSERT_TRUE(net.bind(server, 9000).ok());
  os::SocketId client = net.create(2);
  ASSERT_TRUE(net.connect(client, net.guest_ip(), 9000).ok());
  auto pkt = net.send(client, Bytes{1, 2, 3}, 42);
  ASSERT_TRUE(pkt.ok());
  EXPECT_TRUE(pkt.value().loopback);
  EXPECT_NE(pkt.value().segment_id, 0u);
  EXPECT_EQ(net.rx_available(server).value_or(0), 3u);

  Bytes buf(8);
  FlowTuple flow;
  u64 seg = 0;
  u32 off = 9;
  auto n = net.read_rx(server, buf, &flow, &seg, &off);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(seg, pkt.value().segment_id);
  EXPECT_EQ(off, 0u);
  EXPECT_EQ(flow.src_ip, net.guest_ip());
  EXPECT_EQ(flow.dst_port, 9000);
}

TEST(IpcRelay, PartialLoopbackReadsKeepSegmentOffsets) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  auto& net = m.kernel().net();
  os::SocketId server = net.create(1);
  ASSERT_TRUE(net.bind(server, 9000).ok());
  os::SocketId client = net.create(2);
  ASSERT_TRUE(net.connect(client, net.guest_ip(), 9000).ok());
  ASSERT_TRUE(net.send(client, Bytes{1, 2, 3, 4, 5}, 1).ok());

  Bytes buf(2);
  FlowTuple flow;
  u64 seg = 0;
  u32 off = 99;
  ASSERT_EQ(net.read_rx(server, buf, &flow, &seg, &off).value_or(0), 2u);
  EXPECT_EQ(off, 0u);
  ASSERT_EQ(net.read_rx(server, buf, &flow, &seg, &off).value_or(0), 2u);
  EXPECT_EQ(off, 2u);  // shadow offset advances with consumption
  ASSERT_EQ(net.read_rx(server, buf, &flow, &seg, &off).value_or(0), 1u);
  EXPECT_EQ(off, 4u);
}

TEST(IpcRelay, ProvenanceSurvivesTheRelayAndAttackIsFlagged) {
  attacks::IpcRelayScenario sc;
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  const auto& r = run.value();

  // The relayed payload actually ran in the backend.
  bool announced = false;
  for (const auto& line : r.replayed.console) {
    if (line.find("relayed payload in backend.exe") != std::string::npos) {
      announced = true;
    }
  }
  EXPECT_TRUE(announced);
  EXPECT_TRUE(r.recorded.traps.empty()) << r.recorded.traps[0];
  ASSERT_TRUE(r.flagged) << r.report;

  // The chain must span: C2 netflow, frontend, loopback netflow, backend.
  const core::Finding* netflow_finding = nullptr;
  for (const auto& f : r.findings) {
    if (f.policy == "netflow-export-confluence") netflow_finding = &f;
  }
  ASSERT_NE(netflow_finding, nullptr);
  EXPECT_EQ(netflow_finding->proc.name, "backend.exe");
  EXPECT_NE(r.report.find("frontend.exe"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("backend.exe"), std::string::npos) << r.report;
  EXPECT_NE(r.report.find("169.254.26.161:4444"), std::string::npos)
      << "C2 origin lost across the loopback relay:\n" + r.report;
  // Two distinct netflows appear (C2 and loopback).
  size_t first = r.report.find("NetFlow");
  size_t second = r.report.find("NetFlow", first + 1);
  EXPECT_NE(second, std::string::npos) << r.report;
}

}  // namespace
}  // namespace faros
