// Machine event plumbing: recording semantics (dropped packets are not
// logged), replay fast-forward for blocked guests, device-event replay,
// and the contrast case where a *disk-touching* attack IS visible to the
// event-based baseline.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "attacks/scenarios.h"
#include "baselines/cuckoo.h"
#include "os/machine.h"

namespace faros::os {
namespace {

using attacks::emit_sys;
using vm::Reg;

Image make_recv_exit_program() {
  ImageBuilder ib("recv.exe", kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  attacks::emit_connect(a, attacks::kAttackerIp, attacks::kAttackerPort);
  a.movi_label(Reg::R9, "buf");
  attacks::emit_recv(a, Reg::R9, 16);
  a.mov(Reg::R1, Reg::R0);
  emit_sys(a, Sys::kNtExit);
  a.align(8);
  a.label("buf");
  a.zeros(16);
  auto img = ib.build();
  EXPECT_TRUE(img.ok());
  return img.value();
}

TEST(MachineEvents, DroppedPacketsAreNotRecorded) {
  Machine m;
  ASSERT_TRUE(m.boot().ok());
  // No socket exists: injection must report failure and log nothing.
  FlowTuple flow{1, 2, 3, 4};
  EXPECT_FALSE(m.inject_packet(flow, Bytes{1, 2, 3}));
  EXPECT_TRUE(m.recording().empty());
  // Device injections are always recorded (queues are unconditional).
  m.inject_device(1, Bytes{9});
  EXPECT_EQ(m.recording().size(), 1u);
}

TEST(MachineEvents, AcceptedPacketIsRecordedWithInstructionIndex) {
  Machine m;
  ASSERT_TRUE(m.boot().ok());
  m.kernel().vfs().create("C:/recv.exe",
                          make_recv_exit_program().serialize());
  ASSERT_TRUE(m.kernel().spawn("C:/recv.exe").ok());
  m.run(20000);  // until blocked on recv

  FlowTuple reply{attacks::kAttackerIp, attacks::kAttackerPort,
                  m.kernel().net().guest_ip(), 49162};
  ASSERT_TRUE(m.inject_packet(reply, Bytes{1, 2, 3, 4, 5}));
  ASSERT_EQ(m.recording().size(), 1u);
  const vm::ReplayEvent& ev = m.recording().events()[0];
  EXPECT_EQ(ev.kind, vm::EventKind::kPacketIn);
  EXPECT_EQ(ev.instr_index, m.kernel().interp().instr_count());
  EXPECT_EQ(ev.flow, reply);
  EXPECT_EQ(ev.payload.size(), 5u);
}

TEST(MachineEvents, ReplayFastForwardsToEventsWhenEverythingBlocks) {
  // Build a replay log by hand whose event index is far beyond what the
  // guest can reach while blocked: replay must fast-forward and deliver.
  vm::ReplayLog log;
  {
    Machine rec;
    ASSERT_TRUE(rec.boot().ok());
    rec.kernel().vfs().create("C:/recv.exe",
                              make_recv_exit_program().serialize());
    ASSERT_TRUE(rec.kernel().spawn("C:/recv.exe").ok());
    rec.run(20000);
    FlowTuple reply{attacks::kAttackerIp, attacks::kAttackerPort,
                    rec.kernel().net().guest_ip(), 49162};
    ASSERT_TRUE(rec.inject_packet(reply, Bytes{7, 7, 7}));
    rec.run(20000);
    log = rec.recording();
    ASSERT_EQ(rec.kernel().live_count(), 0u);
  }
  // Perturb the event index upward: the guest will be blocked long before.
  vm::ReplayLog shifted;
  for (vm::ReplayEvent ev : log.events()) {
    ev.instr_index += 1'000'000;
    shifted.append(ev);
  }

  Machine rep;
  ASSERT_TRUE(rep.boot().ok());
  rep.kernel().vfs().create("C:/recv.exe",
                            make_recv_exit_program().serialize());
  auto pid = rep.kernel().spawn("C:/recv.exe");
  ASSERT_TRUE(pid.ok());
  rep.load_replay(shifted);
  auto stats = rep.run(5'000'000);
  EXPECT_TRUE(stats.all_exited);  // fast-forward delivered the packet
  EXPECT_EQ(rep.kernel().find(pid.value())->exit_code, 3u);
}

TEST(MachineEvents, DeviceEventsReplayDeterministically) {
  attacks::HollowingScenario sc;  // consumes keyboard input
  auto rec = attacks::record_run(sc);
  ASSERT_TRUE(rec.ok());
  // The preloaded keystrokes are in the log.
  int device_events = 0;
  for (const auto& ev : rec.value().log.events()) {
    if (ev.kind == vm::EventKind::kDeviceInput) ++device_events;
  }
  EXPECT_EQ(device_events, 3);
  // And the keylogger stole them identically on replay: the log file
  // contents match across record and replay.
  auto rep = attacks::replay_run(sc, rec.value().log, nullptr, {});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().console, rec.value().console);
}

TEST(MachineEvents, DiskTouchingDropperIsVisibleToEventBaseline) {
  // Contrast with the in-memory-only attacks: the dropper writes an
  // executable to disk — exactly the artifact an event-based sandbox DOES
  // catch (and why attackers moved to in-memory injection).
  attacks::DropperChainScenario sc;
  Machine m;
  baselines::CuckooSandboxSim cuckoo;
  m.add_monitor(&cuckoo);
  ASSERT_TRUE(m.boot().ok());
  auto source = sc.make_source();
  m.set_event_source(source.get());
  ASSERT_TRUE(sc.setup(m).ok());
  m.run(sc.budget());
  EXPECT_TRUE(cuckoo.behavioral_verdict());  // dropped .exe observed
}

}  // namespace
}  // namespace faros::os
