// The obs metrics layer: counter/sink/timer semantics, name-table
// integrity, serialisation schema, the instrumented hot paths of
// ShadowMemory / ProvStore / FarosEngine, and the determinism contract —
// two identical replays produce identical counter arrays.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "attacks/scenarios.h"
#include "common/json.h"
#include "core/engine.h"
#include "core/provenance.h"
#include "core/shadow.h"
#include "farm/farm.h"
#include "obs/obs.h"

namespace faros {
namespace {

using obs::Ctr;
using obs::MetricSink;
using obs::MetricSnapshot;
using obs::Tmr;

TEST(ObsCounter, UnboundIsANoop) {
  obs::Counter c;
  c.inc();
  c.inc(1000);  // must not crash; nothing to observe
  obs::Counter null_bound(nullptr, Ctr::kLoads);
  null_bound.inc();
}

TEST(ObsCounter, BoundIncrementsItsCell) {
  MetricSink sink;
  obs::Counter c(&sink, Ctr::kLoads);
  c.inc();
  c.inc(41);
#ifndef FAROS_OBS_DISABLED
  EXPECT_EQ(sink.value(Ctr::kLoads), 42u);
#else
  EXPECT_EQ(sink.value(Ctr::kLoads), 0u);
#endif
  EXPECT_EQ(sink.value(Ctr::kStores), 0u);
}

TEST(ObsSink, AddSetValueAndReset) {
  MetricSink sink;
  sink.add(Ctr::kStores, 5);
  sink.add(Ctr::kStores);
  EXPECT_EQ(sink.value(Ctr::kStores), 6u);
  sink.set(Ctr::kStores, 3);
  EXPECT_EQ(sink.value(Ctr::kStores), 3u);
  sink.add_timer_ns(Tmr::kReplay, 100);
  sink.reset();
  EXPECT_EQ(sink.value(Ctr::kStores), 0u);
  EXPECT_EQ(sink.timer_ns(Tmr::kReplay), 0u);
}

TEST(ObsSnapshot, MergeAccumulatesAndTracksCollected) {
  MetricSnapshot a;  // collected = false
  MetricSink sink;
  sink.add(Ctr::kLoads, 7);
  MetricSnapshot b = sink.snapshot();
  ASSERT_TRUE(b.collected);

  a.merge(b);
  EXPECT_TRUE(a.collected);
  EXPECT_EQ(a[Ctr::kLoads], 7u);
  a.merge(b);
  EXPECT_EQ(a[Ctr::kLoads], 14u);

  // Merging a never-collected snapshot changes nothing.
  MetricSnapshot empty;
  a.merge(empty);
  EXPECT_EQ(a[Ctr::kLoads], 14u);
}

TEST(ObsScopedTimer, AccumulatesOnlyWhenBound) {
  MetricSink sink;
  { obs::ScopedTimer t(&sink, Tmr::kRecord); }
  { obs::ScopedTimer t(nullptr, Tmr::kReplay); }
#ifndef FAROS_OBS_DISABLED
  // steady_clock may be coarse, but a completed scope never subtracts.
  EXPECT_GE(sink.timer_ns(Tmr::kRecord), 0u);
#endif
  EXPECT_EQ(sink.timer_ns(Tmr::kReplay), 0u);
}

TEST(ObsNames, UniqueNonEmptyAndStable) {
  std::set<std::string> seen;
  for (u32 i = 0; i < obs::kCtrCount; ++i) {
    std::string name = obs::ctr_name(static_cast<Ctr>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "?") << "missing name for counter " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_STREQ(obs::ctr_name(Ctr::kInsnsRetired), "insns_retired");
  EXPECT_STREQ(obs::tmr_name(Tmr::kRecord), "record_ns");
}

TEST(ObsNames, AppendCounterFieldsEmitsDeterministicPrefixInOrder) {
  MetricSink sink;
  sink.add(Ctr::kLoads, 3);
  MetricSnapshot s = sink.snapshot();
  JsonWriter w;
  obs::append_counter_fields(w, s);
  std::string out = w.str();
  size_t last = 0;
  for (u32 i = 0; i < obs::kFirstNondetCtr; ++i) {
    std::string key = std::string("\"") +
                      obs::ctr_name(static_cast<Ctr>(i)) + "\":";
    size_t pos = out.find(key, last);
    ASSERT_NE(pos, std::string::npos) << key << " missing/out of order";
    last = pos;
  }
  EXPECT_NE(out.find("\"loads\":3"), std::string::npos);
  EXPECT_EQ(out.find("record_ns"), std::string::npos);  // no timers
  // The nondeterministic tail (thread-scheduling artifacts: ring stalls,
  // waits, depth) must never enter the serialised schema.
  for (u32 i = obs::kFirstNondetCtr; i < obs::kCtrCount; ++i) {
    std::string key = std::string("\"") +
                      obs::ctr_name(static_cast<Ctr>(i)) + "\":";
    EXPECT_EQ(out.find(key), std::string::npos)
        << key << " leaked into the deterministic schema";
  }
}

#ifndef FAROS_OBS_DISABLED

TEST(ObsShadow, CountsCacheTrafficAndPageLifecycle) {
  MetricSink sink;
  core::ShadowMemory s;
  s.bind_obs(&sink);

  // First touch of a frame misses the one-entry cache and allocates.
  s.set(0x1000, 7);
  EXPECT_EQ(sink.value(Ctr::kShadowPageAlloc), 1u);
  u64 miss0 = sink.value(Ctr::kShadowFrameCacheMiss);
  EXPECT_GE(miss0, 1u);

  // Re-reading the same frame hits the cache.
  u64 hit0 = sink.value(Ctr::kShadowFrameCacheHit);
  (void)s.get(0x1004);
  (void)s.get(0x1008);
  EXPECT_EQ(sink.value(Ctr::kShadowFrameCacheHit), hit0 + 2);
  EXPECT_EQ(sink.value(Ctr::kShadowFrameCacheMiss), miss0);

  // Clearing the last tainted byte drops the page.
  s.set(0x1000, core::kEmptyProv);
  EXPECT_EQ(sink.value(Ctr::kShadowPageDrop), 1u);

  // With zero taint anywhere, range probes take the global skip.
  u64 skip0 = sink.value(Ctr::kShadowCleanSkip);
  EXPECT_FALSE(s.range_tainted(0x5000, 8));
  EXPECT_EQ(sink.value(Ctr::kShadowCleanSkip), skip0 + 1);
}

TEST(ObsProvStore, CountsMemoHitsAndMisses) {
  MetricSink sink;
  core::ProvStore store;
  store.bind_obs(&sink);
  auto a = store.intern({core::ProvTag::netflow(1)});
  auto b = store.intern({core::ProvTag::process(2)});

  EXPECT_EQ(store.merge(a, b), store.merge(a, b));
  EXPECT_EQ(sink.value(Ctr::kMergeMemoMiss), 1u);
  EXPECT_EQ(sink.value(Ctr::kMergeMemoHit), 1u);
  // Trivial-identity merges bypass the memo and count nothing.
  (void)store.merge(a, a);
  (void)store.merge(a, core::kEmptyProv);
  EXPECT_EQ(sink.value(Ctr::kMergeMemoHit), 1u);

  (void)store.append(a, core::ProvTag::process(9));
  (void)store.append(a, core::ProvTag::process(9));
  EXPECT_EQ(sink.value(Ctr::kAppendMemoMiss), 1u);
  EXPECT_EQ(sink.value(Ctr::kAppendMemoHit), 1u);
}

#endif  // FAROS_OBS_DISABLED

TEST(ObsEngine, SnapshotFoldsEngineStatsAndRespectsToggle) {
  attacks::HollowingScenario sc;
  auto run = attacks::record_run(sc);
  ASSERT_TRUE(run.ok());

  auto replay = [&](bool collect) {
    os::Machine m;
    core::Options opts;
    opts.collect_metrics = collect;
    auto engine = std::make_unique<core::FarosEngine>(m.kernel(), opts);
    m.attach_cpu_plugin(engine.get());
    m.add_monitor(engine.get());
    EXPECT_TRUE(m.boot().ok());
    EXPECT_TRUE(sc.setup(m).ok());
    m.load_replay(run.value().log);
    m.run(sc.budget());
    return std::make_pair(engine->metrics_snapshot(),
                          engine->stats().insns_seen);
  };

  auto [off, off_insns] = replay(false);
  EXPECT_FALSE(off.collected);
  EXPECT_EQ(off[Ctr::kInsnsRetired], 0u);

  auto [on, on_insns] = replay(true);
  ASSERT_TRUE(on.collected);
  EXPECT_EQ(on[Ctr::kInsnsRetired], on_insns);
  EXPECT_GT(on[Ctr::kInsnsRetired], 0u);
  EXPECT_EQ(on_insns, off_insns);  // metrics must not perturb the run
#ifndef FAROS_OBS_DISABLED
  // Counter-sourced metrics (unlike the EngineStats-folded ones above) read
  // zero when the layer is compiled out.
  EXPECT_GT(on[Ctr::kTaintSrcEvents], 0u);
  EXPECT_GT(on[Ctr::kShadowPageAlloc], 0u);
#endif
}

TEST(ObsDeterminism, TwoIdenticalReplaysProduceIdenticalCounters) {
  farm::Farm f;
  farm::JobSpec spec;
  spec.name = "hollowing";
  spec.make = [] { return std::make_unique<attacks::HollowingScenario>(); };

  farm::JobResult r1 = f.run_job(spec);
  farm::JobResult r2 = f.run_job(spec);
  ASSERT_EQ(r1.status, farm::JobStatus::kOk) << r1.error;
  ASSERT_EQ(r2.status, farm::JobStatus::kOk) << r2.error;
  ASSERT_TRUE(r1.metrics.collected);
  ASSERT_TRUE(r2.metrics.collected);
  // Only the deterministic prefix is pinned: the tail counts scheduling
  // artifacts (ring producer stalls / consumer waits / depth) that two
  // async replays legitimately disagree on.
  for (u32 i = 0; i < obs::kFirstNondetCtr; ++i) {
    EXPECT_EQ(r1.metrics.counters[i], r2.metrics.counters[i])
        << obs::ctr_name(static_cast<Ctr>(i));
  }
  EXPECT_GT(r1.metrics[Ctr::kInsnsRetired], 0u);
  // The async pipeline ran: the trace ring carried records (elided blocks
  // compress to one bulk record each, so no fixed relation to insns).
  EXPECT_GT(r1.metrics[Ctr::kRingRecords], 0u);
}

}  // namespace
}  // namespace faros
