// Extended OS surface: DNS resolution, process enumeration, per-process
// CPU accounting, kernel32 Win32 wrappers, and the DNS-staged
// reverse_tcp_dns client flow.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "attacks/scenarios.h"
#include "common/hash.h"
#include "os/machine.h"
#include "os/runtime.h"

namespace faros::os {
namespace {

using attacks::emit_exit;
using attacks::emit_sys;
using vm::Reg;

class OsExtrasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>();
    ASSERT_TRUE(machine_->boot().ok());
  }

  Kernel& kernel() { return machine_->kernel(); }

  Pid spawn(const std::string& name,
            const std::function<void(ImageBuilder&)>& build) {
    ImageBuilder ib(name, kUserImageBase);
    build(ib);
    auto img = ib.build();
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
    kernel().vfs().create("C:/" + name, img.value().serialize());
    auto pid = kernel().spawn("C:/" + name);
    EXPECT_TRUE(pid.ok());
    return pid.value_or(0);
  }

  std::unique_ptr<Machine> machine_;
};

TEST_F(OsExtrasTest, ResolveHostUsesRegistryThenDeterministicHash) {
  kernel().add_dns("c2.evil.net", 0x01020304);
  EXPECT_EQ(kernel().resolve_host("c2.evil.net"), 0x01020304u);
  u32 a = kernel().resolve_host("unknown.example");
  u32 b = kernel().resolve_host("unknown.example");
  EXPECT_EQ(a, b);                       // deterministic
  EXPECT_EQ(a >> 24, 0x5du);             // synthetic 93.0.0.0/8
  EXPECT_NE(a, kernel().resolve_host("other.example"));
}

TEST_F(OsExtrasTest, GuestResolveHostSyscall) {
  kernel().add_dns("api.update.com", 0xc0a80101);
  Pid pid = spawn("dns.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "host");
    emit_sys(a, Sys::kNtResolveHost);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("host");
    a.data_str("api.update.com");
  });
  machine_->run(10000);
  EXPECT_EQ(kernel().find(pid)->exit_code, 0xc0a80101u);
}

TEST_F(OsExtrasTest, QueryProcessListEnumeratesAliveProcesses) {
  // Two spinners plus the enumerator itself.
  auto spin = [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.label("s");
    emit_sys(a, Sys::kNtYield);
    a.jmp("s");
  };
  Pid a_pid = spawn("a.exe", spin);
  Pid b_pid = spawn("b.exe", spin);
  Pid lister = spawn("lister.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "buf");
    a.movi(Reg::R2, 16);
    emit_sys(a, Sys::kNtQueryProcessList);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("buf");
    a.zeros(64);
  });
  machine_->run(20000);
  Process* p = kernel().find(lister);
  EXPECT_EQ(p->exit_code, 3u);  // a, b, lister
  // The pid array landed in guest memory... the process exited, so verify
  // against a fresh read before destruction isn't possible; instead trust
  // the count and check the pids were assigned in order.
  EXPECT_LT(a_pid, b_pid);
  EXPECT_LT(b_pid, lister);
}

TEST_F(OsExtrasTest, PerProcessCpuAccounting) {
  Pid busy = spawn("busy.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    attacks::emit_busy_loop(a, "x", 2000);
    emit_exit(a, 0);
  });
  Pid lazy = spawn("lazy.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    emit_exit(a, 0);
  });
  machine_->run(100000);
  u64 busy_insns = kernel().find(busy)->instr_retired;
  u64 lazy_insns = kernel().find(lazy)->instr_retired;
  EXPECT_GT(busy_insns, 10000u);
  EXPECT_LT(lazy_insns, 16u);
  EXPECT_GE(kernel().interp().instr_count(), busy_insns + lazy_insns);
}

TEST_F(OsExtrasTest, Kernel32WrappersWork) {
  // Uses VirtualAlloc (arg reshuffle), WinExec (spawn helper), Sleep and
  // GetProcAddress (tail call into ntdll) — all via the IAT.
  kernel().vfs().create(
      "C:/Windows/System32/helper.exe",
      attacks::build_helper_program().value().serialize());
  Pid pid = spawn("win32.exe", [](ImageBuilder& ib) {
    ib.import_symbol(sym::kKernel32, sym::kVirtualAlloc, "iat_valloc");
    ib.import_symbol(sym::kKernel32, sym::kWinExec, "iat_winexec");
    ib.import_symbol(sym::kKernel32, sym::kSleep, "iat_sleep");
    ib.import_symbol(sym::kKernel32, sym::kGetProcAddressK32, "iat_gpa");
    auto& a = ib.asm_();
    a.label("_start");
    // VirtualAlloc(4096, RW) -> r9
    a.movi_label(Reg::R4, "iat_valloc");
    a.ld32(Reg::R4, Reg::R4, 0);
    a.movi(Reg::R1, 4096);
    a.movi(Reg::R2, kProtRead | kProtWrite);
    a.callr(Reg::R4);
    a.mov(Reg::R9, Reg::R0);
    // Touch the memory to prove it's mapped RW.
    a.movi(Reg::R2, 77);
    a.st32(Reg::R9, 0, Reg::R2);
    // Sleep(2)
    a.movi_label(Reg::R4, "iat_sleep");
    a.ld32(Reg::R4, Reg::R4, 0);
    a.movi(Reg::R1, 2);
    a.callr(Reg::R4);
    // GetProcAddress(user32, MessageBoxA) -> call it.
    // The resolver clobbers r1-r12: spill the allocation pointer.
    a.push(Reg::R9);
    a.movi_label(Reg::R4, "iat_gpa");
    a.ld32(Reg::R4, Reg::R4, 0);
    a.movi(Reg::R1, fnv1a32(sym::kUser32));
    a.movi(Reg::R2, fnv1a32(sym::kMessageBox));
    a.callr(Reg::R4);
    a.mov(Reg::R5, Reg::R0);
    a.movi_label(Reg::R1, "msg");
    a.movi(Reg::R2, 5);
    a.callr(Reg::R5);
    // WinExec(helper)
    a.movi_label(Reg::R4, "iat_winexec");
    a.ld32(Reg::R4, Reg::R4, 0);
    a.movi_label(Reg::R1, "helper");
    a.callr(Reg::R4);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtWaitProcess);
    a.pop(Reg::R9);
    a.ld32(Reg::R1, Reg::R9, 0);  // 77
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("iat_valloc");
    a.data_u32(0);
    a.label("iat_winexec");
    a.data_u32(0);
    a.label("iat_sleep");
    a.data_u32(0);
    a.label("iat_gpa");
    a.data_u32(0);
    a.label("msg");
    a.data_str("win32", false);
    a.align(8);
    a.label("helper");
    a.data_str(attacks::paths::kHelper);
  });
  machine_->run(200000);
  Process* p = kernel().find(pid);
  ASSERT_EQ(p->state, ProcState::kTerminated);
  EXPECT_TRUE(kernel().trap_log().empty())
      << kernel().trap_log()[0];
  EXPECT_EQ(p->exit_code, 77u);
  bool msg = false, helper = false;
  for (const auto& line : kernel().console()) {
    if (line == "win32.exe: win32") msg = true;
    if (line == "helper.exe: helper done") helper = true;
  }
  EXPECT_TRUE(msg);
  EXPECT_TRUE(helper);
}

TEST(ReverseTcpDns, DnsStagedVariantStillFlaggedAndDeterministic) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kReverseTcpDns);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged) << run.value().report;
  EXPECT_TRUE(run.value().recorded.traps.empty())
      << run.value().recorded.traps[0];
  // Determinism across record/replay with the DNS step in the path.
  EXPECT_EQ(run.value().replayed.console, run.value().recorded.console);
}

}  // namespace
}  // namespace faros::os
