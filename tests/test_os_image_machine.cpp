// SX32 image format and Machine record/replay determinism.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "common/rng.h"
#include "os/image.h"
#include "os/machine.h"

namespace faros::os {
namespace {

TEST(Image, BuildSerializeDeserializeRoundTrip) {
  ImageBuilder ib("demo.exe", kUserImageBase);
  ib.import_symbol("ntdll.dll", "RtlMemcpy", "iat_memcpy");
  ib.export_symbol("DemoEntry", "_start");
  auto& a = ib.asm_();
  a.label("_start");
  a.nop();
  a.halt();
  a.align(8);
  a.label("iat_memcpy");
  a.data_u32(0);
  auto img = ib.build();
  ASSERT_TRUE(img.ok()) << img.error().message;

  Bytes wire = img.value().serialize();
  auto back = Image::deserialize(wire);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value().name, "demo.exe");
  EXPECT_EQ(back.value().base_va, kUserImageBase);
  EXPECT_EQ(back.value().entry_offset, 0u);
  EXPECT_EQ(back.value().blob, img.value().blob);
  ASSERT_EQ(back.value().imports.size(), 1u);
  EXPECT_EQ(back.value().imports[0].module_hash, fnv1a32("ntdll.dll"));
  EXPECT_EQ(back.value().imports[0].slot_offset, 16u);
  ASSERT_EQ(back.value().exports.size(), 1u);
  EXPECT_EQ(back.value().exports[0].symbol_hash, fnv1a32("DemoEntry"));
}

TEST(Image, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Image::deserialize(Bytes{1, 2, 3}).ok());
  ImageBuilder ib("x.exe", kUserImageBase);
  ib.asm_().halt();
  ib.set_entry("_start");
  ib.asm_().label("_start");
  auto img = ib.build();
  ASSERT_TRUE(img.ok());
  Bytes wire = img.value().serialize();
  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(Image::deserialize(truncated).ok());
}

TEST(Image, BuilderReportsMissingLabels) {
  ImageBuilder ib("x.exe", kUserImageBase);
  ib.set_entry("nope");
  ib.asm_().halt();
  EXPECT_FALSE(ib.build().ok());

  ImageBuilder ib2("y.exe", kUserImageBase);
  ib2.asm_().label("_start");
  ib2.asm_().halt();
  ib2.export_symbol("Sym", "missing");
  EXPECT_FALSE(ib2.build().ok());
}

// ---------------------------------------------------------------------------
// Record/replay determinism: replaying a recorded scenario produces the
// exact same instruction count, console output and process outcomes — the
// property FAROS' offline analysis rests on.

class DeterminismTest
    : public ::testing::TestWithParam<attacks::ReflectiveVariant> {};

TEST_P(DeterminismTest, ReplayReproducesRunExactly) {
  attacks::ReflectiveDllScenario sc(GetParam());
  auto rec = attacks::record_run(sc);
  ASSERT_TRUE(rec.ok()) << rec.error().message;

  auto rep = attacks::replay_run(sc, rec.value().log, nullptr, {});
  ASSERT_TRUE(rep.ok()) << rep.error().message;
  EXPECT_EQ(rep.value().stats.instructions, rec.value().stats.instructions);
  EXPECT_EQ(rep.value().console, rec.value().console);
  EXPECT_EQ(rep.value().traps, rec.value().traps);

  // Replaying twice is also identical (replay of replay-stable state).
  auto rep2 = attacks::replay_run(sc, rec.value().log, nullptr, {});
  ASSERT_TRUE(rep2.ok());
  EXPECT_EQ(rep2.value().stats.instructions,
            rep.value().stats.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, DeterminismTest,
    ::testing::Values(attacks::ReflectiveVariant::kMeterpreter,
                      attacks::ReflectiveVariant::kReverseTcpDns,
                      attacks::ReflectiveVariant::kBypassUac),
    [](const auto& info) {
      switch (info.param) {
        case attacks::ReflectiveVariant::kMeterpreter: return "meterpreter";
        case attacks::ReflectiveVariant::kReverseTcpDns: return "reverse_tcp";
        case attacks::ReflectiveVariant::kBypassUac: return "bypassuac";
      }
      return "x";
    });

TEST(MachineDeterminism, AttachingPluginsDoesNotPerturbExecution) {
  // FAROS attached at replay must observe the identical run: instruction
  // counts match a plugin-free replay.
  attacks::HollowingScenario sc;
  auto rec = attacks::record_run(sc);
  ASSERT_TRUE(rec.ok());
  auto plain = attacks::replay_run(sc, rec.value().log, nullptr, {});
  ASSERT_TRUE(plain.ok());

  auto analyzed = attacks::analyze(sc);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(analyzed.value().replayed.stats.instructions,
            plain.value().stats.instructions);
  EXPECT_EQ(analyzed.value().replayed.console, plain.value().console);
}

TEST(MachineDeterminism, ReplayLogSurvivesSerialization) {
  attacks::RatInjectionScenario sc("njrat");
  auto rec = attacks::record_run(sc);
  ASSERT_TRUE(rec.ok());
  auto wire = rec.value().log.serialize();
  auto log = vm::ReplayLog::deserialize(wire);
  ASSERT_TRUE(log.ok());
  auto rep = attacks::replay_run(sc, log.value(), nullptr, {});
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().stats.instructions, rec.value().stats.instructions);
  EXPECT_EQ(rep.value().console, rec.value().console);
}

TEST(Machine, DeadlockReportedWhenNothingRunnable) {
  // A process blocking on a device with no input and no event source.
  Machine m;
  ASSERT_TRUE(m.boot().ok());
  ImageBuilder ib("block.exe", kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi(vm::R1, 1);
  a.movi_label(vm::R2, "buf");
  a.movi(vm::R3, 4);
  a.movi(vm::R0, static_cast<u32>(Sys::kNtReadDevice));
  a.syscall_();
  a.halt();
  a.align(8);
  a.label("buf");
  a.zeros(4);
  auto img = ib.build();
  ASSERT_TRUE(img.ok());
  m.kernel().vfs().create("C:/block.exe", img.value().serialize());
  ASSERT_TRUE(m.kernel().spawn("C:/block.exe").ok());
  auto stats = m.run(100000);
  EXPECT_TRUE(stats.deadlocked);
  EXPECT_FALSE(stats.all_exited);
  EXPECT_LT(stats.instructions, 100u);
}

}  // namespace
}  // namespace faros::os
