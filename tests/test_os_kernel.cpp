// Kernel: boot, module loading, spawn/loader, scheduling, blocking waits,
// and every syscall family.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "common/hash.h"
#include "os/machine.h"
#include "os/runtime.h"

namespace faros::os {
namespace {

using attacks::emit_exit;
using attacks::emit_sys;
using vm::Assembler;
using vm::Reg;

class KernelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>();
    auto r = machine_->boot();
    ASSERT_TRUE(r.ok()) << r.error().message;
  }

  Kernel& kernel() { return machine_->kernel(); }

  /// Builds an image from `build`, installs it and spawns it.
  Pid spawn_program(const std::string& name,
                    const std::function<void(ImageBuilder&)>& build,
                    bool suspended = false) {
    ImageBuilder ib(name, kUserImageBase);
    build(ib);
    auto img = ib.build();
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
    std::string path = "C:/test/" + name;
    kernel().vfs().create(path, img.value().serialize());
    auto pid = kernel().spawn(path);
    EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error().message);
    (void)suspended;
    return pid.ok() ? pid.value() : 0;
  }

  RunStats run(u64 budget = 200000) { return machine_->run(budget); }

  std::unique_ptr<Machine> machine_;
};

TEST_F(KernelTest, BootLoadsRuntimeModulesWithGuestExportTables) {
  const auto& mods = kernel().modules();
  ASSERT_EQ(mods.size(), 3u);
  EXPECT_EQ(mods[0].name, "ntdll.dll");
  EXPECT_EQ(mods[1].name, "user32.dll");
  EXPECT_GE(mods[0].export_count, 8u);

  // The guest module directory reflects both modules.
  const auto& as = kernel().kernel_as();
  EXPECT_EQ(as.read32_or(KernelLayout::kModuleDir, 0), 3u);
  u32 hash0 = as.read32_or(KernelLayout::kModuleDir + 4, 0);
  EXPECT_EQ(hash0, fnv1a32("ntdll.dll"));

  // Export table structure: count, then (hash, addr) pairs in range.
  u32 count = as.read32_or(mods[0].exports_va, 0);
  EXPECT_EQ(count, mods[0].export_count);
  u32 addr = as.read32_or(mods[0].exports_va + 8, 0);
  EXPECT_GE(addr, mods[0].base);
  EXPECT_LT(addr, mods[0].base + mods[0].size);
}

TEST_F(KernelTest, SpawnSetsUpProcess) {
  Pid pid = spawn_program("hello.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R1, 7);
    emit_exit(a, 7);
  });
  ASSERT_NE(pid, 0u);
  Process* p = kernel().find(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "hello.exe");
  EXPECT_EQ(p->cpu.pc(), kUserImageBase);
  EXPECT_EQ(p->regions.size(), 2u);  // image + stack
  EXPECT_NE(p->as.cr3(), 0u);

  run();
  EXPECT_EQ(p->state, ProcState::kTerminated);
  EXPECT_EQ(p->exit_code, 7u);
  EXPECT_EQ(kernel().live_count(), 0u);
}

TEST_F(KernelTest, SpawnFailsOnMissingOrCorruptImage) {
  EXPECT_FALSE(kernel().spawn("C:/missing.exe").ok());
  kernel().vfs().create("C:/garbage.exe", Bytes{1, 2, 3});
  EXPECT_FALSE(kernel().spawn("C:/garbage.exe").ok());
}

TEST_F(KernelTest, ImportResolutionPatchesIatSlots) {
  Pid pid = spawn_program("import.exe", [](ImageBuilder& ib) {
    ib.import_symbol(sym::kUser32, sym::kMessageBox, "iat_msgbox");
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R4, "iat_msgbox");
    a.ld32(Reg::R5, Reg::R4, 0);
    a.movi_label(Reg::R1, "text");
    a.movi(Reg::R2, 5);
    a.callr(Reg::R5);
    emit_exit(a, 0);
    a.align(8);
    a.label("iat_msgbox");
    a.data_u32(0);
    a.label("text");
    a.data_str("hullo", false);
  });
  ASSERT_NE(pid, 0u);
  run();
  ASSERT_FALSE(kernel().console().empty());
  EXPECT_EQ(kernel().console()[0], "import.exe: hullo");
}

TEST_F(KernelTest, GuestGetProcAddressResolvesAcrossModules) {
  // Calls ntdll!RtlGetProcAddress (at the module base) to resolve
  // user32!MessageBoxA entirely with guest instructions.
  Pid pid = spawn_program("gpa.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R9, KernelLayout::kNtdllBase);
    a.movi(Reg::R1, fnv1a32(sym::kUser32));
    a.movi(Reg::R2, fnv1a32(sym::kMessageBox));
    a.callr(Reg::R9);
    a.mov(Reg::R5, Reg::R0);
    a.movi_label(Reg::R1, "text");
    a.movi(Reg::R2, 3);
    a.callr(Reg::R5);
    emit_exit(a, 0);
    a.align(8);
    a.label("text");
    a.data_str("gpa", false);
  });
  ASSERT_NE(pid, 0u);
  run();
  ASSERT_FALSE(kernel().console().empty());
  EXPECT_EQ(kernel().console()[0], "gpa.exe: gpa");
  EXPECT_TRUE(kernel().trap_log().empty());
}

TEST_F(KernelTest, FileSyscallFamily) {
  Pid pid = spawn_program("files.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    // h = NtCreateFile("C:/t.txt")
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R8, Reg::R0);
    // write "abcdef"
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "data");
    a.movi(Reg::R3, 6);
    emit_sys(a, Sys::kNtWriteFile);
    // seek 2, read 3 into buf
    a.mov(Reg::R1, Reg::R8);
    a.movi(Reg::R2, 2);
    emit_sys(a, Sys::kNtSeekFile);
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 3);
    emit_sys(a, Sys::kNtReadFile);
    // size -> r11
    a.mov(Reg::R1, Reg::R8);
    emit_sys(a, Sys::kNtQueryFileSize);
    a.mov(Reg::R11, Reg::R0);
    // print buf
    a.movi_label(Reg::R1, "buf");
    a.movi(Reg::R2, 3);
    emit_sys(a, Sys::kNtDebugPrint);
    // close, exit with size
    a.mov(Reg::R1, Reg::R8);
    emit_sys(a, Sys::kNtCloseHandle);
    a.mov(Reg::R1, Reg::R11);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/t.txt");
    a.align(8);
    a.label("data");
    a.data_str("abcdef", false);
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  ASSERT_NE(pid, 0u);
  run();
  Process* p = kernel().find(pid);
  EXPECT_EQ(p->exit_code, 6u);
  ASSERT_FALSE(kernel().console().empty());
  EXPECT_EQ(kernel().console()[0], "files.exe: cde");
  auto content = kernel().vfs().read_all("C:/t.txt");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(),
            (Bytes{'a', 'b', 'c', 'd', 'e', 'f'}));
}

TEST_F(KernelTest, PositionalReadWriteAndExistence) {
  kernel().vfs().create("C:/pos.bin", Bytes{0, 1, 2, 3, 4, 5, 6, 7});
  Pid pid = spawn_program("pos.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtQueryFileExists);
    a.mov(Reg::R11, Reg::R0);  // 1
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtOpenFile);
    a.mov(Reg::R8, Reg::R0);
    // ReadFileAt(h, off=4, buf, 2)
    a.mov(Reg::R1, Reg::R8);
    a.movi(Reg::R2, 4);
    a.movi_label(Reg::R3, "buf");
    a.movi(Reg::R4, 2);
    emit_sys(a, Sys::kNtReadFileAt);
    // WriteFileAt(h, off=0, buf, 2) -> copies bytes 4,5 to 0,1
    a.mov(Reg::R1, Reg::R8);
    a.movi(Reg::R2, 0);
    a.movi_label(Reg::R3, "buf");
    a.movi(Reg::R4, 2);
    emit_sys(a, Sys::kNtWriteFileAt);
    a.mov(Reg::R1, Reg::R11);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/pos.bin");
    a.align(8);
    a.label("buf");
    a.zeros(4);
  });
  ASSERT_NE(pid, 0u);
  run();
  EXPECT_EQ(kernel().find(pid)->exit_code, 1u);
  auto content = kernel().vfs().read_all("C:/pos.bin");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), (Bytes{4, 5, 2, 3, 4, 5, 6, 7}));
}

TEST_F(KernelTest, VirtualAllocProtectFree) {
  Pid pid = spawn_program("vm.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    attacks::emit_alloc_self(a, 8192, kProtRead | kProtWrite);
    a.mov(Reg::R9, Reg::R0);
    // Write/read through it.
    a.movi(Reg::R2, 0x1234);
    a.st32(Reg::R9, 100, Reg::R2);
    a.ld32(Reg::R3, Reg::R9, 100);
    // Protect it read-only, then free it.
    a.movi(Reg::R1, 0);
    a.mov(Reg::R2, Reg::R9);
    a.movi(Reg::R3, 8192);
    a.movi(Reg::R4, kProtRead);
    emit_sys(a, Sys::kNtProtectVirtualMemory);
    a.movi(Reg::R1, 0);
    a.mov(Reg::R2, Reg::R9);
    a.movi(Reg::R3, 8192);
    emit_sys(a, Sys::kNtFreeVirtualMemory);
    a.mov(Reg::R1, Reg::R3);
    emit_sys(a, Sys::kNtExit);
  });
  ASSERT_NE(pid, 0u);
  run();
  Process* p = kernel().find(pid);
  EXPECT_EQ(p->state, ProcState::kTerminated);
  EXPECT_TRUE(kernel().trap_log().empty());
  // Region list no longer holds the freed allocation.
  for (const auto& r : p->regions) {
    EXPECT_NE(r.kind, Region::Kind::kAlloc);
  }
}

TEST_F(KernelTest, WriteToFreedOrProtectedMemoryTraps) {
  Pid pid = spawn_program("bad.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    attacks::emit_alloc_self(a, 4096, kProtRead);  // no write
    a.mov(Reg::R9, Reg::R0);
    a.movi(Reg::R2, 1);
    a.st8(Reg::R9, 0, Reg::R2);  // faults
    emit_exit(a, 0);
  });
  ASSERT_NE(pid, 0u);
  run();
  EXPECT_EQ(kernel().find(pid)->exit_code, 0xdeadu);
  ASSERT_FALSE(kernel().trap_log().empty());
  EXPECT_NE(kernel().trap_log()[0].find("write-protect"),
            std::string::npos);
}

TEST_F(KernelTest, ProcessLifecycleSuspendResumeWait) {
  // parent spawns child suspended, resumes it, waits for its exit code.
  ImageBuilder child("child.exe", kUserImageBase);
  {
    auto& a = child.asm_();
    a.label("_start");
    emit_exit(a, 55);
  }
  auto child_img = child.build();
  ASSERT_TRUE(child_img.ok());
  kernel().vfs().create("C:/test/child.exe", child_img.value().serialize());

  Pid pid = spawn_program("parent.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "childpath");
    a.movi(Reg::R2, 1);  // suspended
    emit_sys(a, Sys::kNtCreateProcess);
    a.mov(Reg::R8, Reg::R0);
    a.mov(Reg::R1, Reg::R8);
    emit_sys(a, Sys::kNtResumeProcess);
    a.mov(Reg::R1, Reg::R8);
    emit_sys(a, Sys::kNtWaitProcess);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("childpath");
    a.data_str("C:/test/child.exe");
  });
  ASSERT_NE(pid, 0u);
  run();
  EXPECT_EQ(kernel().find(pid)->exit_code, 55u);
}

TEST_F(KernelTest, OpenProcessByNameAndCrossProcessMemory) {
  Pid victim = spawn_program("victim.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
  });
  ASSERT_NE(victim, 0u);

  Pid attacker = spawn_program("attacker.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "vname");
    emit_sys(a, Sys::kNtOpenProcessByName);
    a.mov(Reg::R7, Reg::R0);
    // Allocate in the victim, write 4 bytes, read them back.
    a.mov(Reg::R1, Reg::R7);
    a.movi(Reg::R2, 4096);
    a.movi(Reg::R3, kProtRead | kProtWrite);
    emit_sys(a, Sys::kNtAllocateVirtualMemory);
    a.mov(Reg::R6, Reg::R0);
    a.mov(Reg::R1, Reg::R7);
    a.mov(Reg::R2, Reg::R6);
    a.movi_label(Reg::R3, "data");
    a.movi(Reg::R4, 4);
    emit_sys(a, Sys::kNtWriteVirtualMemory);
    a.mov(Reg::R1, Reg::R7);
    a.mov(Reg::R2, Reg::R6);
    a.movi_label(Reg::R3, "buf");
    a.movi(Reg::R4, 4);
    emit_sys(a, Sys::kNtReadVirtualMemory);
    a.movi_label(Reg::R5, "buf");
    a.ld32(Reg::R1, Reg::R5, 0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("vname");
    a.data_str("victim.exe");
    a.align(8);
    a.label("data");
    a.data_u32(0xfeedface);
    a.label("buf");
    a.zeros(4);
  });
  ASSERT_NE(attacker, 0u);
  run();
  EXPECT_EQ(kernel().find(attacker)->exit_code, 0xfeedfaceu);
}

TEST_F(KernelTest, RecvBlocksUntilPacketDelivered) {
  Pid pid = spawn_program("net.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    attacks::emit_connect(a, attacks::kAttackerIp, attacks::kAttackerPort);
    a.movi_label(Reg::R9, "buf");
    attacks::emit_recv(a, Reg::R9, 16);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("buf");
    a.zeros(16);
  });
  ASSERT_NE(pid, 0u);
  // Run a while: the process must block, not exit.
  run(50000);
  Process* p = kernel().find(pid);
  EXPECT_EQ(p->state, ProcState::kBlocked);

  // Deliver 5 bytes on the connected flow; the wait completes.
  FlowTuple reply{attacks::kAttackerIp, attacks::kAttackerPort,
                  kernel().net().guest_ip(), 49162};
  EXPECT_TRUE(kernel().deliver_packet(reply, Bytes{1, 2, 3, 4, 5}));
  run(50000);
  EXPECT_EQ(p->state, ProcState::kTerminated);
  EXPECT_EQ(p->exit_code, 5u);
}

TEST_F(KernelTest, DeviceReadBlocksAndCompletes) {
  Pid pid = spawn_program("dev.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R1, static_cast<u32>(DeviceId::kKeyboard));
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 8);
    emit_sys(a, Sys::kNtReadDevice);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  ASSERT_NE(pid, 0u);
  run(20000);
  EXPECT_EQ(kernel().find(pid)->state, ProcState::kBlocked);
  kernel().deliver_device(static_cast<u32>(DeviceId::kKeyboard),
                          Bytes{'a', 'b', 'c'});
  run(20000);
  EXPECT_EQ(kernel().find(pid)->exit_code, 3u);
}

TEST_F(KernelTest, MiscSyscalls) {
  Pid pid = spawn_program("misc.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    emit_sys(a, Sys::kNtGetCurrentPid);
    a.mov(Reg::R11, Reg::R0);
    emit_sys(a, Sys::kNtGetTick);
    emit_sys(a, Sys::kNtGetModuleDirectory);
    a.mov(Reg::R12, Reg::R0);
    a.movi_label(Reg::R1, "ntdllname");
    emit_sys(a, Sys::kNtLoadLibrary);
    a.mov(Reg::R9, Reg::R0);
    a.movi_label(Reg::R1, "rbuf");
    a.movi(Reg::R2, 8);
    emit_sys(a, Sys::kNtGetRandom);
    a.mov(Reg::R1, Reg::R11);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("ntdllname");
    a.data_str("ntdll.dll");
    a.align(8);
    a.label("rbuf");
    a.zeros(8);
  });
  ASSERT_NE(pid, 0u);
  run();
  Process* p = kernel().find(pid);
  EXPECT_EQ(p->exit_code, pid);
  EXPECT_EQ(p->cpu.regs[Reg::R12], KernelLayout::kModuleDir);
  EXPECT_EQ(p->cpu.regs[Reg::R9], KernelLayout::kNtdllBase);
}

TEST_F(KernelTest, UnknownSyscallReturnsError) {
  Pid pid = spawn_program("weird.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R0, 9999);
    a.syscall_();
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
  });
  ASSERT_NE(pid, 0u);
  run();
  EXPECT_EQ(kernel().find(pid)->exit_code, kNtError);
}

TEST_F(KernelTest, OsiQueriesResolveCr3) {
  Pid pid = spawn_program("osi.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
  });
  ASSERT_NE(pid, 0u);
  Process* p = kernel().find(pid);
  auto info = kernel().process_by_cr3(p->as.cr3());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->pid, pid);
  EXPECT_EQ(info->name, "osi.exe");
  EXPECT_FALSE(kernel().process_by_cr3(0x12345).has_value());
  EXPECT_EQ(kernel().process_list().size(), 1u);
}

TEST_F(KernelTest, SchedulerInterleavesProcesses) {
  auto spin = [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R1, 0);
    a.label("loop");
    a.addi(Reg::R1, Reg::R1, 1);
    a.cmpi(Reg::R1, 100000);
    a.bltu("loop");
    emit_exit(a, 0);
  };
  Pid a_pid = spawn_program("cpu_a.exe", spin);
  Pid b_pid = spawn_program("cpu_b.exe", spin);
  ASSERT_NE(a_pid, 0u);
  ASSERT_NE(b_pid, 0u);
  // Run a bit: both must have made progress (round robin).
  machine_->run(20000);
  u32 ra = kernel().find(a_pid)->cpu.regs[Reg::R1];
  u32 rb = kernel().find(b_pid)->cpu.regs[Reg::R1];
  EXPECT_GT(ra, 0u);
  EXPECT_GT(rb, 0u);
}

TEST_F(KernelTest, TerminateFreesFramesAndFiresObservers) {
  u32 free_before = 0;
  {
    Pid pid = spawn_program("die.exe", [](ImageBuilder& ib) {
      auto& a = ib.asm_();
      a.label("_start");
      attacks::emit_alloc_self(a, 65536, kProtRead | kProtWrite);
      emit_exit(a, 0);
    });
    ASSERT_NE(pid, 0u);
    free_before = 0;
    run();
    EXPECT_EQ(kernel().find(pid)->state, ProcState::kTerminated);
  }
  (void)free_before;
  // All user frames are back: a fresh spawn of the same size succeeds and
  // process_by_cr3 of the dead process fails (filtered to alive).
  EXPECT_EQ(kernel().live_count(), 0u);
}

}  // namespace
}  // namespace faros::os
