// Kernel hostile-input and edge-case behaviour: bad pointers, wrong handle
// kinds, invalid pids, double-opens, oversized requests. A misbehaving
// guest must get kNtError (or a trap), never corrupt the kernel.
#include <gtest/gtest.h>

#include "attacks/guest_common.h"
#include "os/machine.h"
#include "os/runtime.h"

namespace faros::os {
namespace {

using attacks::emit_sys;
using vm::Assembler;
using vm::Reg;

class KernelEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = std::make_unique<Machine>();
    ASSERT_TRUE(machine_->boot().ok());
  }

  Kernel& kernel() { return machine_->kernel(); }

  /// Spawns a program and runs until it exits; returns its exit code.
  u32 run_to_exit(const std::function<void(ImageBuilder&)>& build) {
    ImageBuilder ib("edge.exe", kUserImageBase);
    build(ib);
    auto img = ib.build();
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
    kernel().vfs().create("C:/edge.exe", img.value().serialize());
    auto pid = kernel().spawn("C:/edge.exe");
    EXPECT_TRUE(pid.ok());
    machine_->run(300000);
    Process* p = kernel().find(pid.value());
    EXPECT_EQ(p->state, ProcState::kTerminated);
    return p->exit_code;
  }

  std::unique_ptr<Machine> machine_;
};

TEST_F(KernelEdgeTest, FileReadWithBadBufferPointerFailsCleanly) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R8, Reg::R0);
    a.mov(Reg::R1, Reg::R8);
    a.movi(Reg::R2, 0xdead0000);  // unmapped buffer
    a.movi(Reg::R3, 64);
    emit_sys(a, Sys::kNtReadFile);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/x");
  });
  // Read of 0 bytes from an empty file succeeds with 0... but with a bad
  // pointer and empty file nothing is copied; write something first?
  // The file is empty so r0 == 0 regardless; re-run with content below.
  (void)code;
  kernel().vfs().create("C:/y", Bytes(16, 7));
  u32 code2 = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtOpenFile);
    a.mov(Reg::R1, Reg::R0);
    a.movi(Reg::R2, 0xdead0000);
    a.movi(Reg::R3, 16);
    emit_sys(a, Sys::kNtReadFile);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/y");
  });
  EXPECT_EQ(code2, kNtError);
}

TEST_F(KernelEdgeTest, WrongHandleKindIsRejected) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    emit_sys(a, Sys::kNtSocket);
    a.mov(Reg::R8, Reg::R0);
    // NtReadFile on a socket handle.
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 4);
    emit_sys(a, Sys::kNtReadFile);
    a.mov(Reg::R11, Reg::R0);
    // NtSend on a file handle.
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R1, Reg::R0);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 4);
    emit_sys(a, Sys::kNtSend);
    // Both must have failed.
    a.cmpi(Reg::R11, -1);
    a.bne("bad");
    a.cmpi(Reg::R0, -1);
    a.bne("bad");
    attacks::emit_exit(a, 1);
    a.label("bad");
    attacks::emit_exit(a, 2);
    a.align(8);
    a.label("path");
    a.data_str("C:/f");
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  EXPECT_EQ(code, 1u);
}

TEST_F(KernelEdgeTest, CrossProcessOpsRejectSelfAndBadPid) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    emit_sys(a, Sys::kNtGetCurrentPid);
    a.mov(Reg::R8, Reg::R0);
    // Write-VM to self is rejected.
    a.mov(Reg::R1, Reg::R8);
    a.movi(Reg::R2, kUserImageBase);
    a.movi_label(Reg::R3, "buf");
    a.movi(Reg::R4, 4);
    emit_sys(a, Sys::kNtWriteVirtualMemory);
    a.mov(Reg::R11, Reg::R0);
    // Write-VM to a nonexistent pid is rejected.
    a.movi(Reg::R1, 9999);
    a.movi(Reg::R2, kUserImageBase);
    a.movi_label(Reg::R3, "buf");
    a.movi(Reg::R4, 4);
    emit_sys(a, Sys::kNtWriteVirtualMemory);
    a.cmpi(Reg::R11, -1);
    a.bne("bad");
    a.cmpi(Reg::R0, -1);
    a.bne("bad");
    attacks::emit_exit(a, 1);
    a.label("bad");
    attacks::emit_exit(a, 2);
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  EXPECT_EQ(code, 1u);
}

TEST_F(KernelEdgeTest, ProcessControlOnBadPidFails) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R1, 4242);
    emit_sys(a, Sys::kNtSuspendProcess);
    a.mov(Reg::R11, Reg::R0);
    a.movi(Reg::R1, 4242);
    emit_sys(a, Sys::kNtResumeProcess);
    a.mov(Reg::R12, Reg::R0);
    a.movi(Reg::R1, 4242);
    a.movi(Reg::R2, 0);
    emit_sys(a, Sys::kNtTerminateProcess);
    a.add(Reg::R1, Reg::R11, Reg::R12);
    a.add(Reg::R1, Reg::R1, Reg::R0);  // sum of three error codes
    emit_sys(a, Sys::kNtExit);
  });
  EXPECT_EQ(code, 3 * kNtError);
}

TEST_F(KernelEdgeTest, TwoHandlesToSameFileHaveIndependentCursors) {
  kernel().vfs().create("C:/shared", Bytes{'a', 'b', 'c', 'd'});
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtOpenFile);
    a.mov(Reg::R8, Reg::R0);
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtOpenFile);
    a.mov(Reg::R9, Reg::R0);
    // Read 2 via h1; then 1 via h2 — h2 must still see 'a'.
    a.mov(Reg::R1, Reg::R8);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 2);
    emit_sys(a, Sys::kNtReadFile);
    a.mov(Reg::R1, Reg::R9);
    a.movi_label(Reg::R2, "buf2");
    a.movi(Reg::R3, 1);
    emit_sys(a, Sys::kNtReadFile);
    a.movi_label(Reg::R5, "buf2");
    a.ld8(Reg::R1, Reg::R5, 0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/shared");
    a.align(8);
    a.label("buf");
    a.zeros(4);
    a.label("buf2");
    a.zeros(4);
  });
  EXPECT_EQ(code, static_cast<u32>('a'));
}

TEST_F(KernelEdgeTest, OversizedRequestsAreRejected) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    // 64 MiB allocation: over the per-allocation cap.
    a.movi(Reg::R1, 0);
    a.movi(Reg::R2, 64u << 20);
    a.movi(Reg::R3, kProtRead | kProtWrite);
    emit_sys(a, Sys::kNtAllocateVirtualMemory);
    a.mov(Reg::R11, Reg::R0);
    // 8 MiB file read: over the I/O cap.
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R1, Reg::R0);
    a.movi_label(Reg::R2, "buf");
    a.movi(Reg::R3, 8u << 20);
    emit_sys(a, Sys::kNtReadFile);
    a.cmpi(Reg::R11, -1);
    a.bne("bad");
    a.cmpi(Reg::R0, -1);
    a.bne("bad");
    attacks::emit_exit(a, 1);
    a.label("bad");
    attacks::emit_exit(a, 2);
    a.align(8);
    a.label("path");
    a.data_str("C:/f");
    a.align(8);
    a.label("buf");
    a.zeros(8);
  });
  EXPECT_EQ(code, 1u);
}

TEST_F(KernelEdgeTest, SuspendedProcessIsNeverScheduled) {
  ImageBuilder ib("frozen.exe", kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi(Reg::R1, 1);  // would be visible if it ever ran
  a.label("spin");
  emit_sys(a, Sys::kNtYield);
  a.jmp("spin");
  auto img = ib.build();
  ASSERT_TRUE(img.ok());
  kernel().vfs().create("C:/frozen.exe", img.value().serialize());
  auto pid = kernel().spawn("C:/frozen.exe", /*suspended=*/true);
  ASSERT_TRUE(pid.ok());
  auto stats = machine_->run(10000);
  Process* p = kernel().find(pid.value());
  EXPECT_EQ(p->cpu.regs[Reg::R1], 0u);
  EXPECT_EQ(p->cpu.pc(), kUserImageBase);
  EXPECT_TRUE(stats.deadlocked);  // nothing else to run
}

TEST_F(KernelEdgeTest, CreateProcessWithMissingImageReturnsError) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    a.movi(Reg::R2, 0);
    emit_sys(a, Sys::kNtCreateProcess);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/no/such.exe");
  });
  EXPECT_EQ(code, kNtError);
}

TEST_F(KernelEdgeTest, DebugPrintLengthIsCapped) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "text");
    a.movi(Reg::R2, 100000);  // absurd length: capped, reads what's mapped
    emit_sys(a, Sys::kNtDebugPrint);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("text");
    a.data_str("tiny", false);
  });
  // The length is clamped to 1 KiB (still within the mapped image page),
  // so the call succeeds but never floods the console.
  EXPECT_EQ(code, 0u);
  ASSERT_EQ(kernel().find_by_name("edge.exe"), nullptr);  // exited
  bool found = false;
  for (const auto& line : kernel().console()) {
    if (line.rfind("edge.exe: tiny", 0) == 0) {
      found = true;
      EXPECT_LE(line.size(), std::string("edge.exe: ").size() + 1024);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(KernelEdgeTest, CloseHandleTwiceFails) {
  u32 code = run_to_exit([](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R1, "path");
    emit_sys(a, Sys::kNtCreateFile);
    a.mov(Reg::R8, Reg::R0);
    a.mov(Reg::R1, Reg::R8);
    emit_sys(a, Sys::kNtCloseHandle);
    a.mov(Reg::R1, Reg::R8);
    emit_sys(a, Sys::kNtCloseHandle);
    a.mov(Reg::R1, Reg::R0);
    emit_sys(a, Sys::kNtExit);
    a.align(8);
    a.label("path");
    a.data_str("C:/h");
  });
  EXPECT_EQ(code, kNtError);
}

}  // namespace
}  // namespace faros::os
