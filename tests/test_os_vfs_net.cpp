// VFS and network stack unit tests.
#include <gtest/gtest.h>

#include "os/netstack.h"
#include "os/vfs.h"

namespace faros::os {
namespace {

TEST(Vfs, CreateStatReadWrite) {
  Vfs vfs;
  u32 id = vfs.create("C:/a.txt", Bytes{'h', 'i'});
  EXPECT_TRUE(vfs.exists("C:/a.txt"));
  auto st = vfs.stat("C:/a.txt");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().file_id, id);
  EXPECT_EQ(st.value().size, 2u);
  EXPECT_EQ(st.value().version, 0u);

  Bytes buf(8);
  auto n = vfs.read_at("C:/a.txt", 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2u);
  EXPECT_EQ(buf[0], 'h');

  ASSERT_TRUE(vfs.write_at("C:/a.txt", 1, Bytes{'o', 'w'}).ok());
  auto all = vfs.read_all("C:/a.txt");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), (Bytes{'h', 'o', 'w'}));
}

TEST(Vfs, WritePastEofExtends) {
  Vfs vfs;
  vfs.create("f", {});
  ASSERT_TRUE(vfs.write_at("f", 4, Bytes{9}).ok());
  auto st = vfs.stat("f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().size, 5u);
  Bytes buf(5);
  ASSERT_TRUE(vfs.read_at("f", 0, buf).ok());
  EXPECT_EQ(buf, (Bytes{0, 0, 0, 0, 9}));
}

TEST(Vfs, ReadAtOffsetBeyondEofReturnsZero) {
  Vfs vfs;
  vfs.create("f", Bytes{1, 2, 3});
  Bytes buf(4);
  auto n = vfs.read_at("f", 10, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(Vfs, TouchBumpsVersion) {
  Vfs vfs;
  vfs.create("f", {});
  EXPECT_EQ(vfs.touch("f").value_or(0), 1u);
  EXPECT_EQ(vfs.touch("f").value_or(0), 2u);
  EXPECT_EQ(vfs.stat("f").value().version, 2u);
}

TEST(Vfs, RecreatePreservesIdBumpsVersion) {
  Vfs vfs;
  u32 id = vfs.create("f", Bytes{1});
  u32 id2 = vfs.create("f", Bytes{2, 3});
  EXPECT_EQ(id, id2);
  EXPECT_EQ(vfs.stat("f").value().version, 1u);
  EXPECT_EQ(vfs.stat("f").value().size, 2u);
}

TEST(Vfs, RenameDeleteTruncateAppend) {
  Vfs vfs;
  vfs.create("a", Bytes{1, 2, 3, 4});
  ASSERT_TRUE(vfs.rename("a", "b").ok());
  EXPECT_FALSE(vfs.exists("a"));
  ASSERT_TRUE(vfs.truncate("b", 2).ok());
  EXPECT_EQ(vfs.stat("b").value().size, 2u);
  ASSERT_TRUE(vfs.append("b", Bytes{9}).ok());
  EXPECT_EQ(vfs.stat("b").value().size, 3u);
  ASSERT_TRUE(vfs.remove("b").ok());
  EXPECT_FALSE(vfs.exists("b"));
  EXPECT_FALSE(vfs.remove("b").ok());
}

TEST(Vfs, PathForIdAndList) {
  Vfs vfs;
  u32 id = vfs.create("x/y", {});
  vfs.create("x/z", {});
  EXPECT_EQ(vfs.path_for_id(id).value_or(""), "x/y");
  EXPECT_FALSE(vfs.path_for_id(999).has_value());
  EXPECT_EQ(vfs.list().size(), 2u);
}

TEST(Vfs, MissingFileErrors) {
  Vfs vfs;
  Bytes buf(4);
  EXPECT_FALSE(vfs.read_at("nope", 0, buf).ok());
  EXPECT_FALSE(vfs.write_at("nope", 0, buf).ok());
  EXPECT_FALSE(vfs.stat("nope").ok());
  EXPECT_FALSE(vfs.touch("nope").ok());
}

// --------------------------------------------------------------------------

constexpr u32 kGuestIp = 0xa9fe39a8;
constexpr u32 kRemoteIp = 0xa9fe1aa1;

TEST(NetStack, ConnectAssignsDeterministicEphemeralPorts) {
  NetStack net(kGuestIp);
  SocketId s1 = net.create(1);
  SocketId s2 = net.create(1);
  auto f1 = net.connect(s1, kRemoteIp, 4444);
  auto f2 = net.connect(s2, kRemoteIp, 4444);
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_EQ(f1.value().src_port, 49162);  // paper's Table II flow
  EXPECT_EQ(f2.value().src_port, 49163);
  EXPECT_EQ(f1.value().src_ip, kGuestIp);
  EXPECT_EQ(f1.value().dst_ip, kRemoteIp);
}

TEST(NetStack, DeliverToConnectedSocketByFlowMatch) {
  NetStack net(kGuestIp);
  SocketId s = net.create(1);
  auto flow = net.connect(s, kRemoteIp, 4444);
  ASSERT_TRUE(flow.ok());
  FlowTuple reply{kRemoteIp, 4444, kGuestIp, flow.value().src_port};
  EXPECT_TRUE(net.deliver(reply, Bytes{1, 2, 3}));
  EXPECT_EQ(net.rx_available(s).value_or(0), 3u);
  // Wrong remote port: dropped.
  FlowTuple wrong{kRemoteIp, 5555, kGuestIp, flow.value().src_port};
  EXPECT_FALSE(net.deliver(wrong, Bytes{9}));
}

TEST(NetStack, DeliverToBoundSocketByPort) {
  NetStack net(kGuestIp);
  SocketId s = net.create(2);
  ASSERT_TRUE(net.bind(s, 8080).ok());
  FlowTuple flow{kRemoteIp, 999, kGuestIp, 8080};
  EXPECT_TRUE(net.deliver(flow, Bytes{7}));
  EXPECT_EQ(net.rx_available(s).value_or(0), 1u);
}

TEST(NetStack, BindRejectsPortInUse) {
  NetStack net(kGuestIp);
  SocketId a = net.create(1);
  SocketId b = net.create(1);
  ASSERT_TRUE(net.bind(a, 80).ok());
  EXPECT_FALSE(net.bind(b, 80).ok());
}

TEST(NetStack, ReadRxReturnsOneSegmentFlowAtATime) {
  NetStack net(kGuestIp);
  SocketId s = net.create(1);
  auto flow = net.connect(s, kRemoteIp, 4444);
  ASSERT_TRUE(flow.ok());
  FlowTuple reply{kRemoteIp, 4444, kGuestIp, flow.value().src_port};
  net.deliver(reply, Bytes{1, 2, 3, 4});
  net.deliver(reply, Bytes{5, 6});

  Bytes buf(3);
  FlowTuple got;
  auto n = net.read_rx(s, buf, &got);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);  // partial read of segment 1 only
  EXPECT_EQ(got, reply);
  n = net.read_rx(s, buf, &got);
  EXPECT_EQ(n.value(), 1u);  // remainder of segment 1
  Bytes buf2(10);
  n = net.read_rx(s, buf2, &got);
  EXPECT_EQ(n.value(), 2u);  // segment 2, not merged
  n = net.read_rx(s, buf2, &got);
  EXPECT_EQ(n.value(), 0u);  // empty
}

TEST(NetStack, SendRequiresConnectionAndRecordsOutbound) {
  NetStack net(kGuestIp);
  SocketId s = net.create(42);
  EXPECT_FALSE(net.send(s, Bytes{1}, 0).ok());
  ASSERT_TRUE(net.connect(s, kRemoteIp, 4444).ok());
  auto flow = net.send(s, Bytes{1, 2}, 777);
  ASSERT_TRUE(flow.ok());
  ASSERT_EQ(net.outbound().size(), 1u);
  EXPECT_EQ(net.outbound()[0].owner_pid, 42u);
  EXPECT_EQ(net.outbound()[0].instr_index, 777u);
  EXPECT_EQ(net.outbound()[0].data, (Bytes{1, 2}));
}

TEST(NetStack, CloseAllForOwnerDropsSockets) {
  NetStack net(kGuestIp);
  SocketId a = net.create(1);
  SocketId b = net.create(2);
  net.close_all_for(1);
  EXPECT_FALSE(net.socket_exists(a));
  EXPECT_TRUE(net.socket_exists(b));
  EXPECT_EQ(net.socket_owner(b).value_or(0), 2u);
}

}  // namespace
}  // namespace faros::os
