// Report rendering: Table II text, detail blocks with code windows, and
// the JSON export.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "core/report.h"

namespace faros::core {
namespace {

TEST(Report, ChainRendering) {
  ProvStore store;
  TagMaps maps;
  u16 nf = maps.netflow.intern(FlowTuple{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162});
  u16 pr = maps.process.intern(0x1000, 7, "evil.exe");
  auto id = store.intern({ProvTag::netflow(nf), ProvTag::process(pr),
                          ProvTag::export_table()});
  std::string chain = render_chain(store, maps, id);
  EXPECT_EQ(chain,
            "NetFlow: {src ip,port: 169.254.26.161:4444, dest ip,port: "
            "169.254.57.168:49162} ->Process: evil.exe ->ExportTable");
  EXPECT_EQ(render_chain(store, maps, kEmptyProv), "(untainted)");
}

TEST(Report, FindingsTableMarksWhitelisted) {
  ProvStore store;
  TagMaps maps;
  Finding f;
  f.insn_va = 0x20000000;
  f.fetch_prov = store.intern({ProvTag::export_table()});
  f.whitelisted = true;
  std::string table = render_findings_table({f}, store, maps);
  EXPECT_NE(table.find("0x20000000"), std::string::npos);
  EXPECT_NE(table.find("[whitelisted]"), std::string::npos);
}

TEST(Report, CodeWindowMarksFlaggedInstruction) {
  Finding f;
  f.code_base = 0x1000;
  f.insn_va = 0x1008;
  vm::Assembler a;
  a.nop();
  a.ld32(vm::R0, vm::R1, 4);
  a.ret();
  auto blob = a.assemble(0x1000);
  ASSERT_TRUE(blob.ok());
  f.code_window = blob.value();
  std::string text = render_code_window(f);
  EXPECT_NE(text.find("=> 0x00001008  ld32 r0, [r1+4]"), std::string::npos);
  EXPECT_NE(text.find("   0x00001000  nop"), std::string::npos);
}

TEST(Report, JsonExportIsWellFormedish) {
  ProvStore store;
  TagMaps maps;
  u16 pr = maps.process.intern(0x1000, 7, "bad\"guy.exe");
  Finding f;
  f.policy = "netflow-export-confluence";
  f.proc.name = "bad\"guy.exe";
  f.proc.pid = 7;
  f.insn_va = 0x2000;
  f.disasm = "ld32 r0, [r1+4]";
  f.fetch_prov = store.intern({ProvTag::process(pr)});
  std::string json = render_findings_json({f, f}, store, maps);
  // Quotes escaped, both entries present, array brackets balanced.
  EXPECT_NE(json.find("bad\\\"guy.exe"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_EQ(std::count(json.begin(), json.end(), '}'), 2);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"policy\":\"netflow-export-confluence\""),
            std::string::npos);
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
}

TEST(Report, RealFindingCarriesCodeWindowSurvivingWipe) {
  // The transient reflective attack erases its payload after acting; the
  // finding's snapshot must still show the flagged export-table read.
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter,
                                    /*transient=*/true);
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  ASSERT_TRUE(run.value().flagged);
  const Finding& f = run.value().findings[0];
  ASSERT_FALSE(f.code_window.empty());
  std::string text = render_code_window(f);
  EXPECT_NE(text.find("=>"), std::string::npos);
  EXPECT_NE(text.find("ld32"), std::string::npos);
}

}  // namespace
}  // namespace faros::core
