// Robustness: hostile/garbage inputs must never crash the host — fuzz-ish
// image parsing, random replay logs, and long-run shadow hygiene across
// heavy process churn.
#include <gtest/gtest.h>

#include "attacks/datasets.h"
#include "attacks/scenarios.h"
#include "common/rng.h"
#include "core/engine.h"
#include "os/machine.h"

namespace faros {
namespace {

TEST(Robustness, RandomBlobsNeverCrashImageParsingOrSpawn) {
  Rng rng(777);
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  int spawned_ok = 0;
  for (int i = 0; i < 300; ++i) {
    Bytes blob = rng.bytes(rng.below(512));
    // Half the time, make it look almost valid (correct magic).
    if (rng.chance(0.5) && blob.size() >= 8) {
      blob[0] = 0x32;
      blob[1] = 0x33;
      blob[2] = 0x58;
      blob[3] = 0x53;
      blob[4] = 1;
      blob[5] = 0;
      blob[6] = 0;
      blob[7] = 0;
    }
    std::string path = "C:/fuzz/" + std::to_string(i);
    m.kernel().vfs().create(path, blob);
    auto pid = m.kernel().spawn(path);
    if (pid.ok()) ++spawned_ok;
  }
  // Random bytes essentially never form a valid image.
  EXPECT_EQ(spawned_ok, 0);
  EXPECT_EQ(m.kernel().live_count(), 0u);
}

TEST(Robustness, MutatedReplayLogsNeverCrashDeserialization) {
  // Start from a real log, then flip random bytes.
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  auto rec = attacks::record_run(sc);
  ASSERT_TRUE(rec.ok());
  Bytes wire = rec.value().log.serialize();
  Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    Bytes mutated = wire;
    u32 flips = 1 + static_cast<u32>(rng.below(8));
    for (u32 f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^= static_cast<u8>(rng.next_u32());
    }
    auto log = vm::ReplayLog::deserialize(mutated);  // ok or error, no crash
    if (log.ok()) {
      // A mutated-but-parseable log must still replay without crashing the
      // machine (events may simply be dropped or misdelivered).
      auto rep = attacks::replay_run(sc, log.value(), nullptr, {});
      (void)rep;
    }
  }
  SUCCEED();
}

TEST(Robustness, SequentialBatteryOnOneMachineKeepsShadowClean) {
  // Run a dozen behaviour samples on ONE machine under ONE engine: frame
  // recycling across process churn must keep stale taint from accumulating
  // and must never produce a false positive.
  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());
  m.kernel().vfs().create(
      attacks::paths::kHelper,
      attacks::build_helper_program().value().serialize());
  m.kernel().vfs().create(attacks::paths::kSecretDoc, Bytes(32, 's'));
  m.kernel().vfs().create(attacks::paths::kReportDoc, Bytes(32, 'r'));

  auto samples = attacks::table4_families();
  u64 shadow_after_first = 0;
  for (size_t i = 0; i < 12; ++i) {
    const auto& spec = samples[i % samples.size()];
    std::string name =
        "churn" + std::to_string(i) + "-" + spec.family + ".exe";
    auto img = attacks::build_behavior_program(name, spec.behaviors);
    ASSERT_TRUE(img.ok());
    std::string path = "C:/churn/" + name;
    m.kernel().vfs().create(path, img.value().serialize());

    // Feed devices and the C2 inline (no scripted source: push upfront).
    for (attacks::Behavior b : spec.behaviors) {
      u32 dev = 0;
      u32 chunks = attacks::behavior_device_chunks(b, &dev);
      for (u32 c = 0; c < chunks; ++c) {
        m.inject_device(dev, Bytes(16, static_cast<u8>('a' + c)));
      }
    }
    auto pid = m.kernel().spawn(path);
    ASSERT_TRUE(pid.ok());
    // Answer network requests as they appear.
    class Responder : public os::EventSource {
     public:
      void poll(os::Machine& mm) override {
        const auto& out = mm.kernel().net().outbound();
        while (cursor_ < out.size()) {
          const auto& pkt = out[cursor_++];
          if (pkt.loopback) continue;
          FlowTuple reply{pkt.flow.dst_ip, pkt.flow.dst_port,
                          pkt.flow.src_ip, pkt.flow.src_port};
          mm.inject_packet(reply, Bytes(64, 0x5a));
        }
      }
      size_t cursor_ = 0;
    };
    static Responder responder;
    m.set_event_source(&responder);
    m.run(500000);
    EXPECT_EQ(m.kernel().live_count(), 0u) << name;
    if (i == 0) shadow_after_first = engine.shadow().tainted_bytes();
  }
  EXPECT_FALSE(engine.flagged()) << engine.report();
  // Shadow residency stays bounded: dead processes' frames were scrubbed,
  // so twelve runs cost at most a few times one run (file shadows persist
  // by design), not twelve times.
  EXPECT_LT(engine.shadow().tainted_bytes(), 6 * shadow_after_first + 4096);
}

}  // namespace
}  // namespace faros
