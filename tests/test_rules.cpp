// Declarative confluence-rule engine: JSON parser units, predicate/ruleset
// grammar round-trips, trigger dispatch semantics (suppress / warn / the
// per-trigger hot-path masks), equivalence of the spec-defined built-ins
// with the historical hardcoded behaviour, config-only detection of the
// multi-stage C2 scenario, and the farm-level policy-file byte-diff.
#include <gtest/gtest.h>

#include "attacks/corpus.h"
#include "attacks/guest_common.h"
#include "attacks/scenarios.h"
#include "common/json.h"
#include "core/engine.h"
#include "core/rules.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "os/machine.h"
#include "os/runtime.h"

namespace faros::core {
namespace {

using attacks::emit_sys;
using os::ImageBuilder;
using os::kUserImageBase;
using os::Sys;
using vm::Reg;

// ---------------------------------------------------------------------------
// common/json parser.

TEST(JsonParse, ScalarsArraysObjects) {
  auto r = json_parse(
      R"({"a": 17, "b": [true, null, "x"], "c": {"d": -2.5}, "e": false})");
  ASSERT_TRUE(r.ok()) << r.error().message;
  const JsonValue& v = r.value();
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.get("a"), nullptr);
  EXPECT_TRUE(v.get("a")->is_number());
  EXPECT_EQ(v.get("a")->as_u64(), 17u);
  const JsonValue* b = v.get("b");
  ASSERT_TRUE(b && b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_TRUE(b->items[0].is_bool());
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_TRUE(b->items[1].is_null());
  EXPECT_EQ(b->items[2].string, "x");
  const JsonValue* c = v.get("c");
  ASSERT_TRUE(c && c->is_object());
  EXPECT_DOUBLE_EQ(c->get("d")->number, -2.5);
  EXPECT_EQ(c->get("d")->as_u64(), 0u);  // negative -> 0, not a wrap
  EXPECT_EQ(v.get("missing"), nullptr);
}

TEST(JsonParse, StringEscapesIncludingSurrogatePairs) {
  auto r = json_parse(R"(["a\"b\\c\n\t", "\u0041", "\u00e9", "\ud83d\ude00"])");
  ASSERT_TRUE(r.ok()) << r.error().message;
  const auto& items = r.value().items;
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].string, "a\"b\\c\n\t");
  EXPECT_EQ(items[1].string, "A");
  EXPECT_EQ(items[2].string, "\xc3\xa9");
  EXPECT_EQ(items[3].string, "\xf0\x9f\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",            // no value
      "{",           // unterminated object
      "[1,]",        // trailing comma
      "{} garbage",  // trailing bytes after the document
      "tru",         // truncated keyword
      "\"\\u12\"",   // short unicode escape
      "{\"a\" 1}",   // missing colon
  };
  for (const char* text : bad) {
    auto r = json_parse(text);
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
  }
  // Depth bomb: a complete document one level past the recursion cap.
  std::string deep = std::string(66, '[') + std::string(66, ']');
  EXPECT_FALSE(json_parse(deep).ok());
  EXPECT_TRUE(json_parse(std::string(60, '[') + std::string(60, ']')).ok());
}

// ---------------------------------------------------------------------------
// Grammar round-trips.

TEST(RuleGrammar, TriggerAndActionRoundTrip) {
  const Trigger triggers[] = {Trigger::kTaintedLoad, Trigger::kTaintedStore,
                              Trigger::kExecPageWrite, Trigger::kTaintedFetch,
                              Trigger::kSyscallArg};
  for (Trigger t : triggers) {
    auto back = parse_trigger(trigger_name(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), t);
  }
  EXPECT_FALSE(parse_trigger("tainted-branch").ok());
  const RuleAction actions[] = {RuleAction::kFlag, RuleAction::kWarn,
                                RuleAction::kSuppress};
  for (RuleAction a : actions) {
    auto back = parse_action(action_name(a));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), a);
  }
  EXPECT_FALSE(parse_action("ignore").ok());
}

TEST(RuleGrammar, PredicateRoundTrip) {
  const char* texts[] = {
      "fetch has-type:netflow",        "target has-type:export-table",
      "value has-type:file",           "fetch has-type:process",
      "fetch process-count>=2",        "value distinct-netflows>=3",
      "page-flag:exec",
  };
  for (const char* text : texts) {
    auto p = parse_predicate(text);
    ASSERT_TRUE(p.ok()) << text << ": " << p.error().message;
    EXPECT_EQ(predicate_str(p.value()), text);
  }
}

TEST(RuleGrammar, PredicateParseErrors) {
  const char* bad[] = {
      "bogus has-type:netflow",     // unknown subject
      "fetch has-type:keyboard",    // unknown tag type
      "fetch process-count>=x",     // non-numeric threshold
      "fetch process-count>=",      // empty threshold
      "fetch distinct-netflows>=9999999999",  // > 9 digits
      "fetch",                      // no check
      "value frobnicate",           // unknown check
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_predicate(text).ok()) << "accepted: " << text;
  }
}

TEST(RuleGrammar, RulesetJsonRoundTrip) {
  std::vector<RuleSpec> rules = builtin_rules(true, true, true);
  RuleSpec extra;
  extra.id = "multi-stage-c2";
  extra.trigger = Trigger::kTaintedLoad;
  extra.when = {parse_predicate("fetch distinct-netflows>=2").value()};
  extra.action = RuleAction::kWarn;
  rules.push_back(extra);
  auto back = parse_ruleset_json(ruleset_json(rules));
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value(), rules);
}

// Pins policies/default.json: this inline copy of the file must parse to
// exactly the built-ins the default engine Options select, so shipping the
// file through --policies cannot change behaviour (the CI byte-diff checks
// the same property end to end through faros_triage).
TEST(RuleGrammar, DefaultPolicyFileEqualsBuiltins) {
  const char* default_json = R"({
  "rules": [
    {
      "id": "netflow-export-confluence",
      "trigger": "tainted-load",
      "action": "flag",
      "when": [
        "target has-type:export-table",
        "fetch has-type:netflow"
      ]
    },
    {
      "id": "cross-process-export-confluence",
      "trigger": "tainted-load",
      "action": "flag",
      "when": [
        "target has-type:export-table",
        "fetch process-count>=2"
      ]
    }
  ]
})";
  auto parsed = parse_ruleset_json(default_json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), builtin_rules(true, true, false));
}

TEST(RuleGrammar, RulesetParseErrors) {
  const char* bad[] = {
      R"([1,2])",                                          // not an object
      R"({"policies":[]})",                                // unknown top key
      R"({"rules":[{"id":"x"}]})",                         // missing trigger
      R"({"rules":[{"trigger":"tainted-load"}]})",         // missing id
      R"({"rules":[{"id":"","trigger":"tainted-load"}]})", // empty id
      R"({"rules":[{"id":"x","trigger":"nope"}]})",        // bad trigger
      R"({"rules":[{"id":"x","trigger":"tainted-load","action":"zap"}]})",
      R"({"rules":[{"id":"x","trigger":"tainted-load","color":"red"}]})",
      R"({"rules":[{"id":"x","trigger":"tainted-load","when":["gibberish"]}]})",
      R"({"rules":[{"id":"x","trigger":"tainted-load"},
                   {"id":"x","trigger":"syscall-arg"}]})",  // duplicate id
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_ruleset_json(text).ok()) << "accepted: " << text;
  }
}

TEST(RuleGrammar, CountThresholdsAbove255RejectedAtLoadTime) {
  // Provenance-list counts saturate at 255 (provenance.h), so a rule with
  // process-count>=256 could never fire. Loading one must fail loudly —
  // naming the rule — instead of shipping a silently dead policy.
  const char* unsat_process = R"({
  "rules": [
    {
      "id": "impossible-fanout",
      "trigger": "tainted-load",
      "when": ["fetch process-count>=256"]
    }
  ]
})";
  auto p = parse_ruleset_json(unsat_process);
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error().message.find("impossible-fanout"), std::string::npos);
  EXPECT_NE(p.error().message.find("255"), std::string::npos);

  const char* unsat_netflow = R"({
  "rules": [
    {
      "id": "impossible-flows",
      "trigger": "tainted-load",
      "when": ["target distinct-netflows>=300"]
    }
  ]
})";
  auto q = parse_ruleset_json(unsat_netflow);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.error().message.find("impossible-flows"), std::string::npos);

  // The saturation value itself is still reachable and must load.
  const char* at_limit = R"({
  "rules": [
    {
      "id": "at-the-limit",
      "trigger": "tainted-load",
      "when": ["fetch process-count>=255", "value distinct-netflows>=255"]
    }
  ]
})";
  EXPECT_TRUE(parse_ruleset_json(at_limit).ok());
}

TEST(ProvStoreMeta, NetflowCountIsDistinctNetflowTags) {
  ProvStore store;
  EXPECT_EQ(store.netflow_count(kEmptyProv), 0u);
  auto one = store.intern({ProvTag::netflow(1), ProvTag::process(1)});
  EXPECT_EQ(store.netflow_count(one), 1u);
  auto two = store.append(one, ProvTag::netflow(2));
  EXPECT_EQ(store.netflow_count(two), 2u);
  // Appending a duplicate tag does not create a new netflow.
  EXPECT_EQ(store.netflow_count(store.append(two, ProvTag::netflow(2))), 2u);
}

TEST(RuleEngineUnit, HotPathMasksFollowBoundRules) {
  RuleEngine re;
  re.configure(builtin_rules(true, true, false));
  EXPECT_TRUE(re.has_rules(Trigger::kTaintedLoad));
  EXPECT_FALSE(re.has_rules(Trigger::kTaintedStore));
  EXPECT_FALSE(re.has_rules(Trigger::kTaintedFetch));
  EXPECT_FALSE(re.has_rules(Trigger::kSyscallArg));
  // The default rules never look at value provenance: the load fast path
  // must not pay the extra merge.
  EXPECT_FALSE(re.needs_value(Trigger::kTaintedLoad));
  EXPECT_FALSE(re.needs_page_flags(Trigger::kTaintedStore));

  RuleSpec value_rule;
  value_rule.id = "v";
  value_rule.trigger = Trigger::kTaintedLoad;
  value_rule.when = {parse_predicate("value has-type:netflow").value()};
  RuleSpec page_rule;
  page_rule.id = "p";
  page_rule.trigger = Trigger::kTaintedStore;
  page_rule.when = {parse_predicate("page-flag:exec").value()};
  RuleSpec exec_rule;
  exec_rule.id = "e";
  exec_rule.trigger = Trigger::kExecPageWrite;
  exec_rule.when = {parse_predicate("page-flag:exec").value()};
  re.configure({value_rule, page_rule, exec_rule});
  EXPECT_TRUE(re.needs_value(Trigger::kTaintedLoad));
  EXPECT_TRUE(re.needs_page_flags(Trigger::kTaintedStore));
  // exec-page-write implies the flag; it must never request the query.
  EXPECT_FALSE(re.needs_page_flags(Trigger::kExecPageWrite));
}

TEST(RuleEngineUnit, StaticMaskSuppressesTriggersButNeverFetch) {
  RuleEngine re;
  re.configure(builtin_rules(true, true, false));
  ASSERT_TRUE(re.has_rules(Trigger::kTaintedLoad));

  re.set_static_mask(1u << static_cast<u32>(Trigger::kTaintedLoad));
  EXPECT_EQ(re.static_mask(), 1u << static_cast<u32>(Trigger::kTaintedLoad));
  EXPECT_FALSE(re.has_rules(Trigger::kTaintedLoad))
      << "a masked trigger must read as rule-free on the hot path";

  // kTaintedFetch is the self-defense trigger: the engine refuses to let
  // any static proof turn it off.
  re.set_static_mask(0xff);
  EXPECT_EQ(re.static_mask() >> static_cast<u32>(Trigger::kTaintedFetch) & 1,
            0u);

  re.set_static_mask(0);
  EXPECT_TRUE(re.has_rules(Trigger::kTaintedLoad));
}

// ---------------------------------------------------------------------------
// Engine-level semantics on real scenario runs.

core::Options with_rules(std::vector<RuleSpec> rules) {
  core::Options opts;
  opts.rules = std::move(rules);
  return opts;
}

TEST(RuleEngineScenario, SpecBuiltinsReproduceDefaultFindings) {
  attacks::ReflectiveDllScenario sc1(attacks::ReflectiveVariant::kMeterpreter);
  auto base = attacks::analyze(sc1);
  ASSERT_TRUE(base.ok()) << base.error().message;
  attacks::ReflectiveDllScenario sc2(attacks::ReflectiveVariant::kMeterpreter);
  auto spec = attacks::analyze(sc2, with_rules(builtin_rules(true, true, false)));
  ASSERT_TRUE(spec.ok()) << spec.error().message;

  EXPECT_TRUE(base.value().flagged);
  EXPECT_TRUE(spec.value().flagged);
  ASSERT_EQ(base.value().findings.size(), spec.value().findings.size());
  for (size_t i = 0; i < base.value().findings.size(); ++i) {
    const Finding& a = base.value().findings[i];
    const Finding& b = spec.value().findings[i];
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.instr_index, b.instr_index);
    EXPECT_EQ(a.insn_va, b.insn_va);
    EXPECT_EQ(a.proc.name, b.proc.name);
    EXPECT_EQ(a.fetch_prov, b.fetch_prov);
    EXPECT_EQ(a.target_prov, b.target_prov);
  }
  EXPECT_EQ(base.value().engine_stats.policy_evals,
            spec.value().engine_stats.policy_evals);
}

TEST(RuleEngineScenario, SuppressRuleCancelsMatchesOfSameTrigger) {
  auto rules = builtin_rules(true, true, false);
  RuleSpec sup;
  sup.id = "analyst-exception";
  sup.trigger = Trigger::kTaintedLoad;
  sup.when = {parse_predicate("target has-type:export-table").value()};
  sup.action = RuleAction::kSuppress;
  rules.push_back(sup);
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  auto run = attacks::analyze(sc, with_rules(rules));
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_FALSE(run.value().flagged);
  EXPECT_TRUE(run.value().findings.empty());
}

TEST(RuleEngineScenario, WarnRuleRecordsWithoutFlagging) {
  auto rules = builtin_rules(true, true, false);
  for (RuleSpec& r : rules) r.action = RuleAction::kWarn;
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  auto run = attacks::analyze(sc, with_rules(rules));
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_FALSE(run.value().flagged);
  ASSERT_FALSE(run.value().findings.empty());
  for (const Finding& f : run.value().findings) {
    EXPECT_TRUE(f.warn_only);
    EXPECT_FALSE(f.whitelisted);  // warn is not the whitelist: still active
  }
}

// ---------------------------------------------------------------------------
// Trigger coverage with tiny guest programs.

class TriggerTest : public ::testing::Test {
 protected:
  void init(core::Options opts) {
    machine_ = std::make_unique<os::Machine>();
    engine_ = std::make_unique<FarosEngine>(machine_->kernel(), opts);
    machine_->attach_cpu_plugin(engine_.get());
    machine_->add_monitor(engine_.get());
    auto r = machine_->boot();
    ASSERT_TRUE(r.ok()) << r.error().message;
  }

  static core::Options quiet_with_rules(std::vector<RuleSpec> rules) {
    core::Options opts;
    opts.taint_mapped_images = false;
    opts.rules = std::move(rules);
    return opts;
  }

  os::Pid spawn_suspended(const std::string& name,
                          const std::function<void(ImageBuilder&)>& build) {
    ImageBuilder ib(name, kUserImageBase);
    build(ib);
    auto img = ib.build();
    EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
    auto src_off = ib.asm_().label_offset("src");
    src_ = src_off.ok() ? kUserImageBase + src_off.value() : 0;
    std::string path = "C:/test/" + name;
    machine_->kernel().vfs().create(path, img.value().serialize());
    auto pid = machine_->kernel().spawn(path, /*suspended=*/true);
    EXPECT_TRUE(pid.ok());
    return pid.ok() ? pid.value() : 0;
  }

  void taint_packet(os::Process& p, VAddr va, u32 len) {
    osi::GuestXfer xfer{p.info(), &p.as, va, len};
    engine_->on_packet_to_guest(
        xfer, FlowTuple{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162});
  }

  void resume_and_run(os::Pid pid, u64 budget = 60000) {
    os::Process* p = machine_->kernel().find(pid);
    ASSERT_NE(p, nullptr);
    p->state = os::ProcState::kReady;
    machine_->run(budget);
  }

  VAddr src_ = 0;
  std::unique_ptr<os::Machine> machine_;
  std::unique_ptr<FarosEngine> engine_;
};

RuleSpec rule_of(const char* id, Trigger t,
                 std::initializer_list<const char*> preds,
                 RuleAction action = RuleAction::kFlag) {
  RuleSpec r;
  r.id = id;
  r.trigger = t;
  for (const char* p : preds) r.when.push_back(parse_predicate(p).value());
  r.action = action;
  return r;
}

TEST_F(TriggerTest, SyscallArgTriggerSeesTaintedArguments) {
  init(quiet_with_rules(
      {rule_of("tainted-syscall", Trigger::kSyscallArg,
               {"target has-type:netflow"})}));
  os::Pid pid = spawn_suspended("sysarg.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi_label(Reg::R3, "src");
    a.ld32(Reg::R1, Reg::R3, 0);  // tainted bytes into arg register r1
    emit_sys(a, Sys::kNtYield);   // syscall with a tainted argument
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("src");
    a.zeros(8);
  });
  os::Process* p = machine_->kernel().find(pid);
  taint_packet(*p, src_, 4);
  resume_and_run(pid);
  ASSERT_FALSE(engine_->findings().empty());
  EXPECT_EQ(engine_->findings()[0].policy, "tainted-syscall");
  EXPECT_TRUE(engine_->flagged());
  // One finding despite the spin loop issuing more (untainted) syscalls:
  // r1 keeps its taint only until the site dedup kicks in anyway.
  const RuleEngine& re = engine_->rule_engine();
  ASSERT_EQ(re.rule_count(), 1u);
  EXPECT_GE(re.rule_stats(0).hits, 1u);
  // Observability: syscall-arg evals surfaced on their own counter.
  auto snap = engine_->metrics_snapshot();
  EXPECT_GE(snap[obs::Ctr::kRuleEvalsSyscallArg], 1u);
  EXPECT_GE(snap[obs::Ctr::kRuleMatches], 1u);
}

TEST_F(TriggerTest, TaintedFetchTriggerSeesTaintedCode) {
  init(quiet_with_rules(
      {rule_of("net-code-exec", Trigger::kTaintedFetch,
               {"fetch has-type:netflow"})}));
  os::Pid pid = spawn_suspended("fetch.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    a.movi(Reg::R1, 1);
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
  });
  os::Process* p = machine_->kernel().find(pid);
  // Taint the first instruction's own bytes, as if patched from a packet.
  taint_packet(*p, kUserImageBase, vm::kInsnSize);
  resume_and_run(pid);
  ASSERT_FALSE(engine_->findings().empty());
  EXPECT_EQ(engine_->findings()[0].policy, "net-code-exec");
  EXPECT_EQ(engine_->findings()[0].insn_va, kUserImageBase);
}

TEST_F(TriggerTest, TaintedStoreTriggerAndPageFlagPredicate) {
  init(quiet_with_rules(
      {rule_of("tainted-write", Trigger::kTaintedStore,
               {"value has-type:netflow"}),
       rule_of("tainted-write-to-code", Trigger::kTaintedStore,
               {"value has-type:netflow", "page-flag:exec"})}));
  os::Pid pid = spawn_suspended("store.exe", [](ImageBuilder& ib) {
    auto& a = ib.asm_();
    a.label("_start");
    // A non-executable destination: image pages are mapped executable, so
    // the page-flag control needs a plain RW heap allocation.
    attacks::emit_alloc_self(a, 4096, os::kProtRead | os::kProtWrite);
    a.mov(Reg::R3, Reg::R0);
    a.movi_label(Reg::R1, "src");
    a.ld32(Reg::R2, Reg::R1, 0);
    a.st32(Reg::R3, 0, Reg::R2);  // tainted store into the RW page
    a.label("spin");
    emit_sys(a, Sys::kNtYield);
    a.jmp("spin");
    a.align(8);
    a.label("src");
    a.zeros(16);
  });
  os::Process* p = machine_->kernel().find(pid);
  taint_packet(*p, src_, 4);
  resume_and_run(pid);
  ASSERT_EQ(engine_->findings().size(), 1u);
  EXPECT_EQ(engine_->findings()[0].policy, "tainted-write");
  const RuleEngine& re = engine_->rule_engine();
  ASSERT_EQ(re.rule_count(), 2u);
  EXPECT_GE(re.rule_stats(0).hits, 1u);
  // Same evaluation, but the data page is not executable.
  EXPECT_EQ(re.rule_stats(1).hits, 0u);
  EXPECT_EQ(re.rule_stats(0).evals, re.rule_stats(1).evals);
}

// ---------------------------------------------------------------------------
// Multi-stage C2: invisible to the built-ins, caught by one config rule.

TEST(MultiStageC2, CleanUnderDefaultRuleset) {
  attacks::MultiStageC2Scenario sc;
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_FALSE(run.value().flagged);
  EXPECT_TRUE(run.value().findings.empty());
}

TEST(MultiStageC2, FlaggedByDistinctNetflowsRule) {
  auto rules = builtin_rules(true, true, false);
  rules.push_back(rule_of("multi-stage-c2", Trigger::kTaintedLoad,
                          {"fetch distinct-netflows>=2"}));
  attacks::MultiStageC2Scenario sc;
  auto run = attacks::analyze(sc, with_rules(rules));
  ASSERT_TRUE(run.ok()) << run.error().message;
  EXPECT_TRUE(run.value().flagged);
  ASSERT_FALSE(run.value().findings.empty());
  bool hit = false;
  for (const Finding& f : run.value().findings) {
    if (f.policy != "multi-stage-c2") continue;
    hit = true;
    // The flagging instruction itself was decoded from two flows.
    EXPECT_GE(run.value().engine_stats.tainted_fetches, 1u);
  }
  EXPECT_TRUE(hit);
}

// ---------------------------------------------------------------------------
// Farm: policy file vs built-ins, byte for byte, with per-rule counts.

TEST(FarmRules, PolicyFileRulesetMatchesBuiltinsByteForByte) {
  std::vector<farm::JobSpec> jobs;
  for (auto& e : attacks::injection_corpus()) {
    farm::JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  auto jobs2 = jobs;

  farm::FarmConfig cfg1;
  cfg1.workers = 2;
  farm::Farm f1(cfg1);
  auto rep1 = f1.run(std::move(jobs));

  farm::FarmConfig cfg2;
  cfg2.workers = 2;
  auto parsed = parse_ruleset_json(ruleset_json(builtin_rules(true, true,
                                                              false)));
  ASSERT_TRUE(parsed.ok());
  cfg2.engine_opts.rules = parsed.value();
  farm::Farm f2(cfg2);
  auto rep2 = f2.run(std::move(jobs2));

  EXPECT_EQ(farm::results_jsonl(rep1), farm::results_jsonl(rep2));
  for (const auto& r : rep1.results) {
    ASSERT_EQ(r.status, farm::JobStatus::kOk) << r.name;
    ASSERT_EQ(r.rules.size(), 2u) << r.name;
    EXPECT_EQ(r.rules[0].id, "netflow-export-confluence");
    EXPECT_EQ(r.rules[1].id, "cross-process-export-confluence");
    EXPECT_GT(r.rules[0].evals, 0u) << r.name;
    // Per-rule counts made it into the JSONL record.
    EXPECT_NE(farm::job_jsonl(r).find("\"rules\":[{\"id\":"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace faros::core
