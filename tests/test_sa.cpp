// The static analyzer (src/sa): CFG recovery goldens (diamond, loop
// splitting, dead regions, escaping branches), the constant/taint-shape
// dataflow, indirect-target resolution via the analyzer fixpoint, the lint
// rules, deterministic JSONL, the corpus-wide decode property, and the
// farm's --static-prefilter contract (dynamic verdicts untouched, streams
// byte-identical across worker counts).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "os/syscalls.h"
#include "sa/analyzer.h"

namespace faros {
namespace {

using farm::Farm;
using farm::FarmConfig;
using farm::JobSpec;
using farm::JobStatus;
using sa::Cfg;
using sa::EdgeKind;
using vm::Reg;

constexpr u32 kBase = 0x00400000;

os::Image make_image(const std::function<void(vm::Assembler&)>& emit,
                     u32 base = kBase) {
  vm::Assembler a;
  emit(a);
  auto bytes = a.assemble(base);
  if (!bytes.ok()) ADD_FAILURE() << bytes.error().message;
  os::Image img;
  img.name = "t.exe";
  img.base_va = base;
  img.entry_offset = 0;
  img.blob = std::move(bytes).take();
  return img;
}

bool has_edge(const sa::BasicBlock& blk, u32 target, EdgeKind kind) {
  for (const auto& e : blk.succs) {
    if (e.target == target && e.kind == kind) return true;
  }
  return false;
}

bool has_rule(const std::vector<sa::SaFinding>& fs, const std::string& rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

std::vector<JobSpec> corpus_jobs(const std::vector<attacks::CorpusEntry>& es) {
  std::vector<JobSpec> jobs;
  for (const auto& e : es) {
    JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

// --- CFG recovery goldens ---------------------------------------------------

TEST(SaCfg, DiamondRecoversFourBlocksWithBranchAndFallEdges) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.cmpi(Reg::R1, 0);   // +0   entry block [+0, +16)
    a.beq("left");        // +8   taken -> left, fall -> right
    a.movi(Reg::R2, 1);   // +16  right block [+16, +32)
    a.jmp("join");        // +24
    a.label("left");
    a.movi(Reg::R2, 2);   // +32  left block [+32, +40), falls into join
    a.label("join");
    a.halt();             // +40  join block [+40, +48)
  });
  Cfg cfg = sa::recover_cfg(img);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  ASSERT_TRUE(cfg.blocks.count(kBase));
  const auto& entry = cfg.blocks.at(kBase);
  EXPECT_EQ(entry.end, kBase + 16);
  EXPECT_TRUE(has_edge(entry, kBase + 32, EdgeKind::kTaken));
  EXPECT_TRUE(has_edge(entry, kBase + 16, EdgeKind::kFall));
  EXPECT_TRUE(has_edge(cfg.blocks.at(kBase + 16), kBase + 40, EdgeKind::kTaken));
  EXPECT_TRUE(has_edge(cfg.blocks.at(kBase + 32), kBase + 40, EdgeKind::kFall));
  EXPECT_TRUE(cfg.blocks.at(kBase + 40).succs.empty());
  EXPECT_EQ(cfg.insn_count, 6u);
  EXPECT_TRUE(cfg.indirects.empty());
  EXPECT_TRUE(cfg.dead_regions.empty());
}

TEST(SaCfg, LoopBackEdgeSplitsTheHeaderBlock) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R4, 0);      // +0
    a.label("loop");
    a.addi(Reg::R4, Reg::R4, 1);  // +8
    a.cmpi(Reg::R4, 10);          // +16
    a.blt("loop");                // +24  back edge into +8
    a.halt();                     // +32
  });
  Cfg cfg = sa::recover_cfg(img);
  // The branch back into the straight-line run must split it: [+0,+8) and
  // the loop body [+8,+32).
  ASSERT_TRUE(cfg.blocks.count(kBase));
  ASSERT_TRUE(cfg.blocks.count(kBase + 8));
  EXPECT_EQ(cfg.blocks.at(kBase).end, kBase + 8);
  EXPECT_TRUE(has_edge(cfg.blocks.at(kBase), kBase + 8, EdgeKind::kFall));
  const auto& body = cfg.blocks.at(kBase + 8);
  EXPECT_TRUE(has_edge(body, kBase + 8, EdgeKind::kTaken));   // back edge
  EXPECT_TRUE(has_edge(body, kBase + 32, EdgeKind::kFall));
}

TEST(SaCfg, UnreachableCodeShapedTailBecomesDeadRegion) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.halt();                          // +0: the only reachable insn
    a.movi(Reg::R1, 1);                // unreachable tail, code-shaped
    a.movi(Reg::R2, 2);
    a.add(Reg::R3, Reg::R1, Reg::R2);
    a.xor_(Reg::R5, Reg::R5, Reg::R5);
    a.ret();
  });
  Cfg cfg = sa::recover_cfg(img);
  EXPECT_EQ(cfg.blocks.size(), 1u);
  ASSERT_EQ(cfg.dead_regions.size(), 1u);
  const auto& r = cfg.dead_regions[0];
  EXPECT_EQ(r.start, kBase + 8);
  EXPECT_EQ(r.insns, 5u);
  EXPECT_EQ(r.non_nop, 5u);
  EXPECT_TRUE(r.has_terminator);
}

TEST(SaCfg, DirectBranchOutsideTheImageIsRecordedNotFollowed) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.label("start");
    a.jmp("beyond");
    a.label("beyond");  // label sits at the very end: target == image end
  });
  Cfg cfg = sa::recover_cfg(img);
  EXPECT_EQ(cfg.blocks.size(), 1u);
  ASSERT_EQ(cfg.escaping_targets.size(), 1u);
  EXPECT_EQ(cfg.escaping_targets[0], kBase + 8);
}

TEST(SaCfg, InvalidOpcodeStopsDescentAndIsRecorded) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, 7);  // +0
    a.data_u32(0xff);    // +8: opcode byte 0xff — undecodable
    a.data_u32(0);
  });
  Cfg cfg = sa::recover_cfg(img);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks.at(kBase).insns.size(), 1u);
  ASSERT_EQ(cfg.invalid_sites.size(), 1u);
  EXPECT_EQ(cfg.invalid_sites[0], kBase + 8);
}

// --- dataflow ---------------------------------------------------------------

TEST(SaDataflow, ConstantFoldingMirrorsInterpreterSemantics) {
  sa::RegState st = sa::RegState::all_varies();
  auto run = [&](vm::Opcode op, u8 rd, u8 rs1, u8 rs2, u32 imm) {
    sa::transfer(vm::Instruction{op, rd, rs1, rs2, imm}, kBase, st);
  };
  run(vm::Opcode::kMovi, Reg::R1, 0, 0, 10);
  run(vm::Opcode::kAddi, Reg::R2, Reg::R1, 0, 5);
  EXPECT_EQ(st.regs[Reg::R2].kind, sa::ValKind::kConst);
  EXPECT_EQ(st.regs[Reg::R2].c, 15u);
  // Shift counts mask to 5 bits, as in the CPU.
  run(vm::Opcode::kShli, Reg::R3, Reg::R1, 0, 33);
  EXPECT_EQ(st.regs[Reg::R3].c, 20u);
  // u32 wrap-around.
  run(vm::Opcode::kMovi, Reg::R4, 0, 0, 0xffffffff);
  run(vm::Opcode::kAddi, Reg::R5, Reg::R4, 0, 2);
  EXPECT_EQ(st.regs[Reg::R5].c, 1u);
  // xor r, r is the idiomatic clear even when r varies.
  run(vm::Opcode::kXor, Reg::R6, Reg::R7, Reg::R7, 0);
  EXPECT_EQ(st.regs[Reg::R6].kind, sa::ValKind::kConst);
  EXPECT_EQ(st.regs[Reg::R6].c, 0u);
  // Divide-by-zero traps at runtime; statically it is just "varies".
  run(vm::Opcode::kMovi, Reg::R8, 0, 0, 0);
  run(vm::Opcode::kDivu, Reg::R9, Reg::R1, Reg::R8, 0);
  EXPECT_EQ(st.regs[Reg::R9].kind, sa::ValKind::kVaries);
}

TEST(SaDataflow, LoadsAndSyscallsMarkValuesRuntimeDerived) {
  sa::RegState st = sa::RegState::all_varies();
  sa::transfer(vm::Instruction{vm::Opcode::kLd32, Reg::R1, Reg::R2, 0, 0},
               kBase, st);
  EXPECT_TRUE(st.regs[Reg::R1].from_load);
  sa::transfer(vm::Instruction{vm::Opcode::kSyscall, 0, 0, 0, 0}, kBase, st);
  EXPECT_TRUE(st.regs[Reg::R0].from_load);
  // The mark survives copies and arithmetic.
  sa::transfer(vm::Instruction{vm::Opcode::kMov, Reg::R3, Reg::R0, 0, 0},
               kBase, st);
  sa::transfer(vm::Instruction{vm::Opcode::kAddi, Reg::R4, Reg::R3, 0, 8},
               kBase, st);
  EXPECT_TRUE(st.regs[Reg::R4].from_load);
  // A fresh constant scrubs it.
  sa::transfer(vm::Instruction{vm::Opcode::kMovi, Reg::R3, 0, 0, 1}, kBase,
               st);
  EXPECT_FALSE(st.regs[Reg::R3].from_load);
}

TEST(SaAnalyzer, ResolvesMoviFedIndirectJumpInASecondPass) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi_label(Reg::R1, "tgt");  // +0
    a.jr(Reg::R1);                 // +8
    a.label("tgt");
    a.halt();                      // +16
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_EQ(rep.indirect_sites, 1u);
  EXPECT_EQ(rep.resolved_indirects, 1u);
  EXPECT_GE(rep.passes, 2u);
  ASSERT_TRUE(rep.cfg.blocks.count(kBase + 16));
  ASSERT_EQ(rep.cfg.indirects.size(), 1u);
  EXPECT_TRUE(rep.cfg.indirects[0].resolved);
  EXPECT_EQ(rep.cfg.indirects[0].target, kBase + 16);
}

// --- lint rules -------------------------------------------------------------

TEST(SaRules, StoreIntoReachedCodeFiresSmcAlert) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, kBase);      // address of this very instruction
    a.st32(Reg::R1, 0, Reg::R2);
    a.halt();
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(has_rule(rep.findings, "smc-write-to-code"));
  EXPECT_GE(rep.risk, sa::kStaticRiskThreshold);
}

TEST(SaRules, LoaderShapeFiresStoreThenIndirect) {
  // The self-injection silhouette: syscall result becomes a pointer that
  // is stored through and then called.
  os::Image img = make_image([](vm::Assembler& a) {
    a.syscall_();                // alloc: r0 = runtime-derived pointer
    a.mov(Reg::R6, Reg::R0);
    a.st8(Reg::R6, 0, Reg::R2);  // computed store
    a.callr(Reg::R6);            // control flow through it
    a.halt();
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(has_rule(rep.findings, "store-then-indirect"));
  EXPECT_GE(rep.risk, sa::kStaticRiskThreshold);
}

TEST(SaRules, ResolvedInjectionSyscallNumberFiresAlert) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtWriteVirtualMemory));
    a.syscall_();
    a.halt();
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(has_rule(rep.findings, "injection-syscall"));
  EXPECT_GE(rep.risk, sa::kStaticRiskThreshold);
  // A benign syscall number must not fire it.
  os::Image benign = make_image([](vm::Assembler& a) {
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtDebugPrint));
    a.syscall_();
    a.halt();
  });
  EXPECT_FALSE(
      has_rule(sa::analyze_image(benign).findings, "injection-syscall"));
}

TEST(SaRules, UnreachableCodeShapedRegionFiresEmbeddedBlob) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.halt();
    a.movi(Reg::R1, 1);  // staged payload: never reached, ends in ret
    a.movi(Reg::R2, 2);
    a.add(Reg::R3, Reg::R1, Reg::R2);
    a.st32(Reg::R6, 0, Reg::R3);
    a.ret();
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(has_rule(rep.findings, "embedded-code-blob"));
}

TEST(SaRules, PopHeavyFunctionFiresStackImbalance) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.call("f");
    a.halt();
    a.label("f");
    a.pop(Reg::R1);  // consumes a frame it never created
    a.ret();
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(has_rule(rep.findings, "stack-imbalance"));
}

TEST(SaRules, StraightLineComputeIsClean) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, 6);
    a.movi(Reg::R2, 7);
    a.mul(Reg::R3, Reg::R1, Reg::R2);
    a.halt();
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(rep.findings.empty());
  EXPECT_EQ(rep.risk, 0u);
}

// --- report / JSONL ---------------------------------------------------------

TEST(SaAnalyzer, ProgramReportAggregatesAndJsonlIsDeterministic) {
  std::vector<os::Image> images;
  images.push_back(make_image([](vm::Assembler& a) {
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtWriteVirtualMemory));
    a.syscall_();
    a.halt();
  }));
  images.push_back(make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, 1);
    a.halt();
  }));
  sa::ProgramReport rep1 = sa::analyze_images("prog", images);
  sa::ProgramReport rep2 = sa::analyze_images("prog", images);
  EXPECT_EQ(rep1.images, 2u);
  EXPECT_TRUE(rep1.flagged());
  ASSERT_EQ(rep1.rules.size(), 1u);
  EXPECT_EQ(rep1.rules[0], "injection-syscall");

  EXPECT_EQ(sa::program_jsonl("test", rep1), sa::program_jsonl("test", rep2));
  ASSERT_EQ(rep1.per_image.size(), rep2.per_image.size());
  for (size_t i = 0; i < rep1.per_image.size(); ++i) {
    EXPECT_EQ(sa::image_jsonl("prog", rep1.per_image[i]),
              sa::image_jsonl("prog", rep2.per_image[i]));
  }
  std::string line = sa::program_jsonl("test", rep1);
  EXPECT_NE(line.find("\"type\":\"program\""), std::string::npos);
  EXPECT_NE(line.find("\"static_flagged\":true"), std::string::npos);
}

// --- corpus-wide properties -------------------------------------------------

TEST(SaCorpus, EveryProgramExtractsAndEveryReachedInsnDecodes) {
  u32 programs = 0, images = 0;
  for (const auto& e : attacks::full_corpus()) {
    auto sc = e.make();
    auto extracted = attacks::extract_images(*sc);
    ASSERT_TRUE(extracted.ok())
        << e.name << ": " << extracted.error().message;
    ASSERT_FALSE(extracted.value().empty()) << e.name;
    for (const auto& x : extracted.value()) {
      sa::ImageReport rep = sa::analyze_image(x.image);
      EXPECT_GT(rep.blocks, 0u) << e.name << "/" << x.image.name;
      // Every instruction inside a reached block must be a valid decode
      // whose bounds stay inside the image — descent may *stop* at data,
      // but can never swallow it into a block.
      for (const auto& [start, blk] : rep.cfg.blocks) {
        EXPECT_GE(start, x.image.base_va);
        EXPECT_LE(blk.end - x.image.base_va, x.image.blob.size());
        for (const auto& insn : blk.insns) {
          EXPECT_TRUE(vm::opcode_valid(static_cast<u8>(insn.op)))
              << e.name << "/" << x.image.name << " @ " << start;
        }
      }
      ++images;
    }
    ++programs;
  }
  EXPECT_EQ(programs, 135u);
  EXPECT_GE(images, programs);
}

// --- farm --static-prefilter ------------------------------------------------

TEST(FarmPrefilter, NeverChangesDynamicVerdicts) {
  auto jobs = corpus_jobs(attacks::injection_corpus());

  FarmConfig off_cfg;
  off_cfg.workers = 2;
  Farm off(off_cfg);
  auto off_report = off.run(jobs);

  FarmConfig on_cfg;
  on_cfg.workers = 2;
  on_cfg.static_prefilter = true;
  Farm on(on_cfg);
  auto on_report = on.run(jobs);

  ASSERT_EQ(off_report.results.size(), on_report.results.size());
  for (size_t i = 0; i < off_report.results.size(); ++i) {
    const auto& a = off_report.results[i];
    const auto& b = on_report.results[i];
    EXPECT_EQ(a.flagged, b.flagged) << a.name;
    EXPECT_EQ(a.policies, b.policies) << a.name;
    EXPECT_EQ(a.findings, b.findings) << a.name;
    EXPECT_EQ(a.record_instructions, b.record_instructions) << a.name;
    EXPECT_EQ(a.replay_instructions, b.replay_instructions) << a.name;
    EXPECT_STREQ(a.verdict(), b.verdict()) << a.name;
    EXPECT_FALSE(a.sa_analyzed);
    EXPECT_TRUE(b.sa_analyzed) << b.name << ": " << b.sa_error;
    EXPECT_TRUE(b.sa_error.empty()) << b.name << ": " << b.sa_error;
    // Injection ground truth is expect_flagged, so the static verdict can
    // only be TP (caught) or FN (statically invisible channel).
    EXPECT_TRUE(std::string(b.static_verdict()) == "TP" ||
                std::string(b.static_verdict()) == "FN")
        << b.name << ": " << b.static_verdict();
  }
  EXPECT_EQ(on_report.metrics.sa_analyzed, on_report.results.size());
  EXPECT_EQ(off_report.metrics.sa_analyzed, 0u);
}

TEST(FarmPrefilter, ResultsStreamDeterministicAcrossWorkerCounts) {
  auto jobs = corpus_jobs(attacks::injection_corpus());
  for (auto& e : attacks::jit_corpus()) {
    JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
    if (jobs.size() >= 15) break;
  }

  FarmConfig serial_cfg;
  serial_cfg.workers = 1;
  serial_cfg.static_prefilter = true;
  Farm serial(serial_cfg);
  std::string serial_out = farm::results_jsonl(serial.run(jobs));

  FarmConfig wide_cfg;
  wide_cfg.workers = 8;
  wide_cfg.static_prefilter = true;
  Farm wide(wide_cfg);
  std::string wide_out = farm::results_jsonl(wide.run(jobs));

  EXPECT_EQ(serial_out, wide_out);
  EXPECT_NE(serial_out.find("\"sa_verdict\""), std::string::npos);
}

}  // namespace
}  // namespace faros
