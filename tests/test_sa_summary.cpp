// Interprocedural summary analysis (PR 9): call-graph construction and SCC
// ordering, bottom-up function summaries, the SummaryCallModel vs the
// historical clobber-all call semantics, a soundness property test for
// sa::transfer against the concrete interpreter, block splitting at
// resolved indirect targets, multi-pass convergence, the policy trigger
// mask (closed-world proof conditions), the static-prefilter confusion
// matrix pinned over the full corpus, and the farm-level A/B contracts
// (summary elision on/off, static pruning on/off: byte-identical streams).
#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "os/syscalls.h"
#include "sa/analyzer.h"
#include "sa/callgraph.h"
#include "sa/summary.h"
#include "vm/assembler.h"
#include "vm/cpu.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros {
namespace {

using farm::Farm;
using farm::FarmConfig;
using farm::JobSpec;
using sa::AbsVal;
using sa::CallGraph;
using sa::Cfg;
using sa::EdgeKind;
using sa::FuncSummary;
using sa::RegState;
using sa::SumKind;
using sa::SummaryCallModel;
using sa::SummaryTable;
using sa::SumVal;
using sa::ValKind;
using vm::Reg;

constexpr u32 kBase = 0x00400000;

os::Image image_of(const vm::Assembler& a, u32 base = kBase) {
  auto bytes = a.assemble(base);
  if (!bytes.ok()) ADD_FAILURE() << bytes.error().message;
  os::Image img;
  img.name = "t.exe";
  img.base_va = base;
  img.entry_offset = 0;
  img.blob = std::move(bytes).take();
  return img;
}

os::Image make_image(const std::function<void(vm::Assembler&)>& emit,
                     u32 base = kBase) {
  vm::Assembler a;
  emit(a);
  return image_of(a, base);
}

/// Undecodable padding: 0xff is not a valid opcode, so descent that falls
/// into it records an invalid site instead of inventing code.
void pad_invalid(vm::Assembler& a) {
  const u8 junk[vm::kInsnSize] = {0xff, 0xff, 0xff, 0xff,
                                  0xff, 0xff, 0xff, 0xff};
  a.data(ByteSpan(junk, sizeof junk));
}

u32 scc_index_of(const CallGraph& cg, u32 entry) {
  for (u32 i = 0; i < cg.sccs.size(); ++i) {
    for (u32 e : cg.sccs[i]) {
      if (e == entry) return i;
    }
  }
  ADD_FAILURE() << "entry " << entry << " in no SCC";
  return ~0u;
}

std::vector<JobSpec> corpus_jobs(const std::vector<attacks::CorpusEntry>& es) {
  std::vector<JobSpec> jobs;
  for (const auto& e : es) {
    JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

// --- call graph -------------------------------------------------------------

TEST(SaCallGraph, DirectCallsYieldFunctionsAndCalleeFirstSccs) {
  vm::Assembler a;
  a.call("f");      // +0
  a.call("g");      // +8
  a.halt();         // +16
  a.label("f");     // +24
  a.movi(Reg::R1, 1);
  a.call("g");      // +32
  a.ret();          // +40
  a.label("g");     // +48
  a.movi(Reg::R2, 2);
  a.ret();
  os::Image img = image_of(a);

  Cfg cfg = sa::recover_cfg(img);
  CallGraph cg = sa::build_callgraph(cfg);
  const u32 f = kBase + 24, g = kBase + 48;
  ASSERT_EQ(cg.functions.size(), 3u);
  ASSERT_NE(cg.function_of(kBase), nullptr);
  ASSERT_NE(cg.function_of(f), nullptr);
  ASSERT_NE(cg.function_of(g), nullptr);

  const sa::Function& start = *cg.function_of(kBase);
  EXPECT_EQ(start.callees, (std::set<u32>{f, g}));
  EXPECT_FALSE(start.has_unresolved_call);
  ASSERT_EQ(start.call_sites.size(), 2u);
  EXPECT_EQ(start.call_sites[0].va, kBase + 0);
  EXPECT_EQ(start.call_sites[1].va, kBase + 8);
  EXPECT_TRUE(start.call_sites[0].resolved);
  EXPECT_EQ(start.call_sites[0].target, f);

  EXPECT_EQ(cg.function_of(f)->callees, (std::set<u32>{g}));
  EXPECT_TRUE(cg.function_of(g)->callees.empty());

  // Callee-first condensation: g before f before _start.
  EXPECT_LT(scc_index_of(cg, g), scc_index_of(cg, f));
  EXPECT_LT(scc_index_of(cg, f), scc_index_of(cg, kBase));
}

TEST(SaCallGraph, MutualRecursionCollapsesIntoOneScc) {
  vm::Assembler a;
  a.call("f");      // +0
  a.halt();         // +8
  a.label("f");     // +16
  a.call("g");
  a.ret();
  a.label("g");     // +32
  a.call("f");
  a.ret();
  os::Image img = image_of(a);

  CallGraph cg = sa::build_callgraph(sa::recover_cfg(img));
  const u32 f = kBase + 16, g = kBase + 32;
  ASSERT_EQ(cg.functions.size(), 3u);
  const u32 scc_f = scc_index_of(cg, f);
  EXPECT_EQ(scc_f, scc_index_of(cg, g));
  ASSERT_EQ(cg.sccs[scc_f].size(), 2u);
  // Members ascend by va; the recursive pair still precedes its caller.
  EXPECT_EQ(cg.sccs[scc_f], (std::vector<u32>{f, g}));
  EXPECT_LT(scc_f, scc_index_of(cg, kBase));
}

// --- function summaries -----------------------------------------------------

TEST(SaSummary, LeafOutEffectsConstAndPreservedParams) {
  vm::Assembler a;
  a.movi(Reg::R5, 7);  // +0
  a.call("f");         // +8
  a.add(Reg::R6, Reg::R5, Reg::R5);  // +16: needs R5 preserved across f
  a.halt();            // +24
  a.label("f");        // +32
  a.movi(Reg::R1, 1);
  a.ret();
  os::Image img = image_of(a);

  Cfg cfg = sa::recover_cfg(img);
  CallGraph cg = sa::build_callgraph(cfg);
  SummaryTable table = sa::compute_summaries(cfg, cg);
  const u32 f = kBase + 32;
  ASSERT_TRUE(table.count(f));
  const FuncSummary& s = table.at(f);
  EXPECT_TRUE(s.returns);
  EXPECT_FALSE(s.clobber_all);
  EXPECT_FALSE(s.can_store);
  EXPECT_FALSE(s.can_load);
  EXPECT_FALSE(s.can_syscall);
  EXPECT_TRUE(s.inert);
  EXPECT_EQ(s.out[Reg::R1], SumVal::konst(1));
  // A register f never touches reads back as the caller's own value.
  EXPECT_EQ(s.out[Reg::R5], SumVal::param(Reg::R5));
  EXPECT_TRUE(s.writes.empty());
  EXPECT_FALSE(s.writes_unknown);
}

TEST(SaSummary, StoreEffectsPropagateToCallersAsWriteFacts) {
  vm::Assembler a;
  a.call("w");       // +0
  a.halt();          // +8
  a.label("w");      // +16
  a.st32(Reg::R1, 0, Reg::R2);
  a.ret();
  os::Image img = image_of(a);

  Cfg cfg = sa::recover_cfg(img);
  SummaryTable table = sa::compute_summaries(cfg, sa::build_callgraph(cfg));
  const u32 w = kBase + 16;
  ASSERT_TRUE(table.count(w));
  const FuncSummary& s = table.at(w);
  EXPECT_TRUE(s.can_store);
  EXPECT_FALSE(s.inert);
  ASSERT_EQ(s.writes.size(), 1u);
  EXPECT_EQ(s.writes[0],
            (sa::WriteFact{sa::WriteFact::kParamRel, Reg::R1, 0}));

  // The caller inherits the may-store bit through the call edge.
  ASSERT_TRUE(table.count(kBase));
  EXPECT_TRUE(table.at(kBase).can_store);
  EXPECT_FALSE(table.at(kBase).inert);
}

TEST(SaSummary, CallModelPreservesConstantsClobberAllLoses) {
  vm::Assembler a;
  a.movi(Reg::R5, 7);  // +0
  a.call("f");         // +8
  a.add(Reg::R6, Reg::R5, Reg::R5);  // +16: post-call block
  a.halt();
  a.label("f");
  a.movi(Reg::R1, 1);
  a.ret();
  os::Image img = image_of(a);
  Cfg cfg = sa::recover_cfg(img);
  const u32 post = kBase + 16;

  // Historical semantics: the call clobbers every register.
  sa::DataflowResult clobbered = sa::run_dataflow(cfg, nullptr);
  ASSERT_TRUE(clobbered.block_in.count(post));
  EXPECT_NE(clobbered.block_in.at(post).regs[Reg::R5].kind, ValKind::kConst);

  // Summary semantics: f provably preserves R5 and returns R1 = 1.
  SummaryTable table = sa::compute_summaries(cfg, sa::build_callgraph(cfg));
  SummaryCallModel model(table);
  sa::DataflowResult sharp = sa::run_dataflow(cfg, &model);
  ASSERT_TRUE(sharp.block_in.count(post));
  const RegState& in = sharp.block_in.at(post);
  ASSERT_EQ(in.regs[Reg::R5].kind, ValKind::kConst);
  EXPECT_EQ(in.regs[Reg::R5].c, 7u);
  ASSERT_EQ(in.regs[Reg::R1].kind, ValKind::kConst);
  EXPECT_EQ(in.regs[Reg::R1].c, 1u);
}

TEST(SaSummary, UnresolvedCalleeFallsBackToClobberAll) {
  vm::Assembler a;
  a.movi(Reg::R5, 7);    // +0
  a.ld32(Reg::R3, Reg::R2);  // +8: opaque target
  a.callr(Reg::R3);      // +16
  a.add(Reg::R6, Reg::R5, Reg::R5);  // +24: post-call block
  a.halt();
  os::Image img = image_of(a);
  Cfg cfg = sa::recover_cfg(img);

  SummaryTable table = sa::compute_summaries(cfg, sa::build_callgraph(cfg));
  SummaryCallModel model(table);
  sa::DataflowResult df = sa::run_dataflow(cfg, &model);
  const u32 post = kBase + 24;
  ASSERT_TRUE(df.block_in.count(post));
  EXPECT_NE(df.block_in.at(post).regs[Reg::R5].kind, ValKind::kConst)
      << "an unresolved callr must not pretend to preserve registers";
}

// --- transfer soundness vs the concrete interpreter -------------------------

// Minimal concrete-execution harness (mirrors tests/test_vm_cpu.cpp).
struct CpuEnv {
  static constexpr u32 kCodeBase = 0x10000;
  static constexpr u32 kStackTop = 0x80000;

  vm::PhysMem mem{1u << 20};
  vm::FrameAllocator frames{0};
  vm::AddressSpace as;
  vm::Interpreter interp{mem};
  vm::CpuState cpu;

  CpuEnv() : frames(mem.num_frames()) {
    frames.reserve(0);
    as = vm::AddressSpace::create(mem, frames).value();
    EXPECT_TRUE(as.map_alloc(kStackTop - 0x2000, 0x2000,
                             vm::kPteUser | vm::kPteWrite)
                    .ok());
    cpu.regs[vm::SP] = kStackTop - 16;
  }

  void load(const vm::Assembler& a) {
    auto blob = a.assemble(kCodeBase);
    ASSERT_TRUE(blob.ok()) << blob.error().message;
    ASSERT_TRUE(as.map_alloc(kCodeBase, static_cast<u32>(blob.value().size()),
                             vm::kPteUser | vm::kPteWrite | vm::kPteExec)
                    .ok());
    ASSERT_TRUE(as.copy_in(kCodeBase, blob.value(), false).ok());
    cpu.set_pc(kCodeBase);
  }
};

TEST(SaTransferSoundness, RandomStraightLineProgramsNeverLieAboutConsts) {
  // Property: run sa::transfer and the interpreter over the same random
  // straight-line ALU program, instruction by instruction, from an
  // all-unknown abstract state. Whenever the abstract state claims a
  // register is kConst, the concrete register must hold exactly that
  // value — an abstract constant that diverges from the machine would
  // poison indirect resolution, summaries, and the elision proofs alike.
  std::mt19937 rng(0xfa405u);  // fixed seed: deterministic corpus
  const Reg pool[] = {Reg::R1, Reg::R2, Reg::R3, Reg::R4,
                      Reg::R5, Reg::R6, Reg::R7, Reg::R8};
  auto reg = [&] { return pool[rng() % (sizeof pool / sizeof pool[0])]; };

  for (int trial = 0; trial < 40; ++trial) {
    vm::Assembler a;
    for (int i = 0; i < 30; ++i) {
      const Reg rd = reg(), ra = reg(), rb = reg();
      switch (rng() % 12) {
        case 0: a.movi(rd, rng()); break;
        case 1: a.mov(rd, ra); break;
        case 2: a.add(rd, ra, rb); break;
        case 3: a.sub(rd, ra, rb); break;
        case 4: a.mul(rd, ra, rb); break;
        case 5: a.and_(rd, ra, rb); break;
        case 6: a.or_(rd, ra, rb); break;
        case 7: a.xor_(rd, ra, rb); break;
        case 8: a.shl(rd, ra, rb); break;
        case 9: a.shr(rd, ra, rb); break;
        case 10:
          a.addi(rd, ra, static_cast<i32>(rng() % 1024) - 512);
          break;
        case 11:
          // Guarded division: a fresh non-zero constant divisor, so the
          // concrete run cannot trap and the fold stays comparable.
          a.movi(Reg::R9, rng() % 255 + 1);
          a.divu(rd, ra, Reg::R9);
          break;
      }
    }
    a.halt();

    auto blob = a.assemble(CpuEnv::kCodeBase);
    ASSERT_TRUE(blob.ok()) << blob.error().message;
    const Bytes& bytes = blob.value();
    const u32 n_insns = static_cast<u32>(bytes.size()) / vm::kInsnSize;

    CpuEnv env;
    env.load(a);
    RegState st;  // all-unknown entry state: sound for any initial regs
    for (u32 i = 0; i + 1 < n_insns; ++i) {  // stop before the halt
      auto insn = vm::decode(
          ByteSpan(bytes.data() + i * vm::kInsnSize, vm::kInsnSize));
      ASSERT_TRUE(insn.has_value()) << "trial " << trial << " insn " << i;
      const u32 va = CpuEnv::kCodeBase + i * vm::kInsnSize;
      sa::transfer(*insn, va, st);
      auto info = env.interp.run(env.cpu, env.as, 1);
      ASSERT_NE(info.result, vm::StepResult::kTrap)
          << "trial " << trial << " insn " << i;
      for (u32 r = 0; r < vm::kNumRegs; ++r) {
        if (st.regs[r].kind != ValKind::kConst) continue;
        ASSERT_EQ(st.regs[r].c, env.cpu.regs[r])
            << "trial " << trial << " insn " << i << " reg " << r;
      }
    }
  }
}

// --- block splitting at resolved indirect targets ---------------------------

vm::Assembler midblock_jr_program() {
  vm::Assembler a;
  a.movi_label(Reg::R1, "mid");  // +0
  a.jmp("head");                 // +8
  a.label("head");               // +16
  a.addi(Reg::R2, Reg::R2, 1);
  a.label("mid");                // +24
  a.addi(Reg::R2, Reg::R2, 2);
  a.jr(Reg::R1);                 // +32
  return a;
}

TEST(SaCfgSplit, ResolvedIndirectTargetMidBlockSplitsOnInsnBoundary) {
  os::Image img = image_of(midblock_jr_program());
  const u32 head = kBase + 16, mid = kBase + 24, jr_va = kBase + 32;

  Cfg cfg = sa::recover_cfg(img, {{jr_va, mid}});
  ASSERT_TRUE(cfg.blocks.count(head));
  ASSERT_TRUE(cfg.blocks.count(mid));
  const sa::BasicBlock& h = cfg.blocks.at(head);
  EXPECT_EQ(h.end, mid);
  ASSERT_EQ(h.succs.size(), 1u);
  EXPECT_EQ(h.succs[0].target, mid);
  EXPECT_EQ(h.succs[0].kind, EdgeKind::kFall);
  const sa::BasicBlock& m = cfg.blocks.at(mid);
  ASSERT_EQ(m.insns.size(), 2u);
  ASSERT_EQ(cfg.indirects.size(), 1u);
  EXPECT_TRUE(cfg.indirects[0].resolved);
  EXPECT_EQ(cfg.indirects[0].target, mid);
  EXPECT_TRUE(cfg.invalid_sites.empty());
  // Every block boundary stays on an instruction boundary.
  for (const auto& [va, bb] : cfg.blocks) {
    EXPECT_EQ((va - kBase) % vm::kInsnSize, 0u);
    EXPECT_EQ((bb.end - kBase) % vm::kInsnSize, 0u);
  }
}

TEST(SaCfgSplit, MisalignedResolvedTargetIsRejectedNotSplit) {
  os::Image img = image_of(midblock_jr_program());
  const u32 jr_va = kBase + 32;
  const u32 misaligned = kBase + 28;  // mid-instruction

  Cfg cfg = sa::recover_cfg(img, {{jr_va, misaligned}});
  EXPECT_FALSE(cfg.blocks.count(misaligned));
  ASSERT_FALSE(cfg.invalid_sites.empty());
  EXPECT_NE(std::find(cfg.invalid_sites.begin(), cfg.invalid_sites.end(),
                      misaligned),
            cfg.invalid_sites.end());
  for (const auto& [va, bb] : cfg.blocks) {
    EXPECT_EQ((va - kBase) % vm::kInsnSize, 0u);
  }
}

TEST(SaCfgSplit, AnalyzerFixpointResolvesAndSplitsEndToEnd) {
  os::Image img = image_of(midblock_jr_program());
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.indirect_sites, 1u);
  EXPECT_EQ(rep.resolved_indirects, 1u);
  ASSERT_TRUE(rep.cfg.blocks.count(kBase + 24));
}

// --- multi-pass convergence -------------------------------------------------

vm::Assembler two_hop_hidden_program() {
  // hidden1 is reachable only through the first jr, hidden2 only through
  // the second: each analysis round uncovers exactly one more hop, so the
  // fixpoint needs three rounds (resolve, resolve, quiesce).
  vm::Assembler a;
  a.movi_label(Reg::R1, "hidden1");  // +0
  a.jr(Reg::R1);                     // +8
  a.label("hidden1");                // +16
  a.movi_label(Reg::R2, "hidden2");
  a.jr(Reg::R2);                     // +24
  a.label("hidden2");                // +32
  a.movi(Reg::R3, 0);
  a.halt();
  return a;
}

TEST(SaConvergence, TwoHopChainNeedsThreePassesAndConverges) {
  os::Image img = image_of(two_hop_hidden_program());
  sa::ImageReport rep = sa::analyze_image(img);  // default max_passes = 4
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.passes, 3u);
  EXPECT_EQ(rep.indirect_sites, 2u);
  EXPECT_EQ(rep.resolved_indirects, 2u);
  ASSERT_TRUE(rep.cfg.blocks.count(kBase + 16));
  ASSERT_TRUE(rep.cfg.blocks.count(kBase + 32));
}

TEST(SaConvergence, PassBudgetExhaustionIsReportedNotMasked) {
  os::Image img = image_of(two_hop_hidden_program());
  sa::SaOptions opts;
  opts.max_passes = 1;
  sa::ImageReport one = sa::analyze_image(img, opts);
  EXPECT_FALSE(one.converged);
  EXPECT_EQ(one.passes, 1u);

  opts.max_passes = 2;
  sa::ImageReport two = sa::analyze_image(img, opts);
  EXPECT_FALSE(two.converged) << "resolution still progressing on the "
                                 "final round must not report converged";
  EXPECT_EQ(two.passes, 2u);
  EXPECT_EQ(two.trigger_mask, 0u) << "a non-converged image must never "
                                     "offer a trigger mask";
}

// --- policy trigger mask ----------------------------------------------------

void emit_exit_then_junk(vm::Assembler& a) {
  a.movi(Reg::R1, 0);
  a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtExit));
  a.syscall_();
  pad_invalid(a);  // the exit's fall-through lands here: tolerated
}

TEST(SaTriggerMask, PureAluProgramMasksLoadStoreAndExecWrite) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R2, 3);
    a.mul(Reg::R2, Reg::R2, Reg::R2);
    emit_exit_then_junk(a);
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.invalid_sites, 1u);  // the tolerated exit fall-through
  EXPECT_EQ(rep.trigger_mask,
            sa::kMaskTaintedLoad | sa::kMaskTaintedStore |
                sa::kMaskExecPageWrite);
}

TEST(SaTriggerMask, LoadKeepsLoadTriggerStoreKillsEverything) {
  os::Image with_load = make_image([](vm::Assembler& a) {
    a.ld32(Reg::R2, Reg::R3);
    emit_exit_then_junk(a);
  });
  EXPECT_EQ(sa::analyze_image(with_load).trigger_mask,
            sa::kMaskTaintedStore | sa::kMaskExecPageWrite);

  os::Image with_store = make_image([](vm::Assembler& a) {
    a.st32(Reg::R3, 0, Reg::R2);
    emit_exit_then_junk(a);
  });
  EXPECT_EQ(sa::analyze_image(with_store).trigger_mask, 0u);
}

TEST(SaTriggerMask, NonWhitelistedSyscallKillsTheMask) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, 0x1000);
    a.movi(Reg::R2, 7);
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtAllocateVirtualMemory));
    a.syscall_();
    emit_exit_then_junk(a);
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.trigger_mask, 0u)
      << "NtAllocVirtualMemory can mint code pages; nothing is provable";
}

TEST(SaTriggerMask, UnresolvedIndirectKillsTheMask) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R2, 5);
    a.jr(Reg::R1);  // R1 is never defined: opaque target
  });
  sa::ImageReport rep = sa::analyze_image(img);
  EXPECT_EQ(rep.resolved_indirects, 0u);
  EXPECT_EQ(rep.trigger_mask, 0u)
      << "an open-world CFG must not prove any trigger unreachable";
}

TEST(SaTriggerMask, InvalidFallThroughFromNonExitSyscallKillsTheMask) {
  os::Image img = make_image([](vm::Assembler& a) {
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtYield));
    a.syscall_();
    pad_invalid(a);  // yield returns: falling into junk is a real hole
  });
  EXPECT_EQ(sa::analyze_image(img).trigger_mask, 0u);
}

TEST(SaTriggerMask, ConstBoundedCopyInOutsideCodeStaysSilent) {
  // NtReadFile with a dataflow-proven constant destination window that
  // does not overlap any recovered block: the kernel write-back cannot
  // reach code, so the mask survives.
  os::Image ok = make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, 3);             // fd
    a.movi(Reg::R2, 0x00500000);    // dst: far from the image
    a.movi(Reg::R3, 64);            // len
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtReadFile));
    a.syscall_();
    emit_exit_then_junk(a);
  });
  EXPECT_EQ(sa::analyze_image(ok).trigger_mask,
            sa::kMaskTaintedLoad | sa::kMaskTaintedStore |
                sa::kMaskExecPageWrite);

  // Same syscall aimed at the entry block: the copy-in could rewrite
  // code under our feet, so nothing is provable.
  os::Image overlap = make_image([](vm::Assembler& a) {
    a.movi(Reg::R1, 3);
    a.movi(Reg::R2, kBase);  // dst: the entry block itself
    a.movi(Reg::R3, 64);
    a.movi(Reg::R0, static_cast<u32>(os::Sys::kNtReadFile));
    a.syscall_();
    emit_exit_then_junk(a);
  });
  EXPECT_EQ(sa::analyze_image(overlap).trigger_mask, 0u);
}

TEST(SaTriggerMask, ProgramMaskIsTheIntersectionAcrossImages) {
  os::Image clean = make_image([](vm::Assembler& a) {
    a.movi(Reg::R2, 3);
    emit_exit_then_junk(a);
  });
  os::Image storing = make_image(
      [](vm::Assembler& a) {
        a.st32(Reg::R3, 0, Reg::R2);
        emit_exit_then_junk(a);
      },
      kBase + 0x10000);

  sa::ProgramReport both = sa::analyze_images("p", {clean, storing});
  EXPECT_EQ(both.trigger_mask, 0u);
  sa::ProgramReport solo = sa::analyze_images("p", {clean});
  EXPECT_EQ(solo.trigger_mask,
            sa::kMaskTaintedLoad | sa::kMaskTaintedStore |
                sa::kMaskExecPageWrite);
  sa::ProgramReport none = sa::analyze_images("p", {});
  EXPECT_EQ(none.trigger_mask, 0u);
}

TEST(SaTriggerMask, JsonNamesFollowCoreTriggerOrder) {
  EXPECT_EQ(sa::trigger_mask_json(0), "[]");
  EXPECT_EQ(sa::trigger_mask_json(sa::kMaskTaintedLoad |
                                  sa::kMaskTaintedStore |
                                  sa::kMaskExecPageWrite),
            "[\"tainted-load\",\"tainted-store\",\"exec-page-write\"]");
  EXPECT_EQ(sa::trigger_mask_json(sa::kMaskSyscallArg),
            "[\"syscall-arg\"]");
}

// --- full-corpus pins: prefilter matrix + policy aggregate ------------------

TEST(SaCorpusPins, PrefilterMatrixAndPolicyAggregate) {
  // One sweep over all 135 corpus programs pins both acceptance numbers:
  //  * static prefilter confusion matrix: 11 TP / 0 FP / 122 TN / 2 FN,
  //    the two FNs being the known low-risk injectors;
  //  * policy pruning aggregate: 7 programs (all benign) with mask 7,
  //    21 pruned trigger bits in total.
  u32 tp = 0, fp = 0, tn = 0, fn = 0;
  std::vector<std::string> fn_names;
  u32 pruned_programs = 0, pruned_bits = 0;
  std::vector<os::Image> first_flagged;

  for (const auto& e : attacks::full_corpus()) {
    auto sc = e.make();
    auto extracted = attacks::extract_images(*sc);
    ASSERT_TRUE(extracted.ok()) << e.name << ": "
                                << extracted.error().message;
    std::vector<os::Image> images;
    for (auto& x : extracted.value()) images.push_back(std::move(x.image));

    sa::ProgramReport rep = sa::analyze_images(e.name, images);
    EXPECT_EQ(rep.risk_threshold, sa::kStaticRiskThreshold);
    if (rep.flagged() && first_flagged.empty()) first_flagged = images;
    if (e.expect_flagged) {
      if (rep.flagged()) ++tp;
      else { ++fn; fn_names.push_back(e.name); }
    } else {
      if (rep.flagged()) ++fp;
      else ++tn;
    }
    if (rep.trigger_mask) {
      ++pruned_programs;
      EXPECT_EQ(e.category, "benign")
          << e.name << " pruned outside the benign set";
      EXPECT_EQ(rep.trigger_mask,
                sa::kMaskTaintedLoad | sa::kMaskTaintedStore |
                    sa::kMaskExecPageWrite)
          << e.name;
    }
    pruned_bits += static_cast<u32>(__builtin_popcount(rep.trigger_mask));
  }

  EXPECT_EQ(tp, 11u);
  EXPECT_EQ(fp, 0u);
  EXPECT_EQ(tn, 122u);
  ASSERT_EQ(fn, 2u);
  for (const auto& n : fn_names) {
    EXPECT_TRUE(n.find("pulley") != std::string::npos ||
                n.find("collision") != std::string::npos)
        << "unexpected static FN: " << n;
  }
  EXPECT_EQ(pruned_programs, 7u);
  EXPECT_EQ(pruned_bits, 21u);

  // Satellite: the risk threshold is a real knob, not a constant.
  ASSERT_FALSE(first_flagged.empty());
  sa::SaOptions strict;
  strict.risk_threshold = 1'000'000;
  EXPECT_FALSE(sa::analyze_images("p", first_flagged, strict).flagged());
  sa::SaOptions loose;
  loose.risk_threshold = 1;
  EXPECT_TRUE(sa::analyze_images("p", first_flagged, loose).flagged());
}

// --- farm A/B contracts -----------------------------------------------------

TEST(FarmSummaryElide, ResultStreamByteIdenticalOnVsOff) {
  // Summary-inert elision is a pure throughput lever: the replay with
  // hint-elided instruction bodies must produce the byte-identical result
  // stream as the unelided replay (the full-corpus CI gate pins the same
  // property at scale; this pins it in-tree on the injection corpus).
  auto jobs = corpus_jobs(attacks::injection_corpus());

  FarmConfig on;  // engine_opts.summary_elide defaults to true
  on.workers = 4;
  std::string with_elide = farm::results_jsonl(Farm(on).run(jobs));

  FarmConfig off;
  off.workers = 4;
  off.engine_opts.summary_elide = false;
  std::string without = farm::results_jsonl(Farm(off).run(jobs));

  EXPECT_EQ(with_elide, without);
  EXPECT_FALSE(with_elide.empty());
}

TEST(FarmStaticPrune, ResultStreamByteIdenticalOnVsOff) {
  // --static-prune hands the replay engine the statically proven trigger
  // mask. Soundness shows up as byte-identity: a wrongly masked trigger
  // would change a per-rule eval counter or a verdict in the stream.
  std::vector<attacks::CorpusEntry> entries = attacks::injection_corpus();
  u32 benign_masked = 0;
  for (auto& e : attacks::full_corpus()) {
    if (e.category != "benign") continue;
    // Confirm the subset actually engages the pruner before A/B-ing it.
    auto sc = e.make();
    auto extracted = attacks::extract_images(*sc);
    ASSERT_TRUE(extracted.ok()) << e.name;
    std::vector<os::Image> images;
    for (auto& x : extracted.value()) images.push_back(std::move(x.image));
    if (sa::analyze_images(e.name, images).trigger_mask) ++benign_masked;
    entries.push_back(std::move(e));
  }
  ASSERT_GE(benign_masked, 1u) << "prune A/B would not exercise a mask";
  auto jobs = corpus_jobs(entries);

  FarmConfig on;
  on.workers = 4;
  on.static_prune = true;
  std::string pruned = farm::results_jsonl(Farm(on).run(jobs));

  FarmConfig off;
  off.workers = 4;
  std::string unpruned = farm::results_jsonl(Farm(off).run(jobs));

  EXPECT_EQ(pruned, unpruned);
  EXPECT_FALSE(pruned.empty());
}

}  // namespace
}  // namespace faros
