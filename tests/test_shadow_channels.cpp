// Kernel-resident taint channels (segment and atom shadows): unit behaviour
// plus ablation interactions — even with netflow tags disabled, the
// process-tag chain carried through these channels still trips the
// cross-process policy.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "core/shadow.h"

namespace faros {
namespace {

TEST(SegmentShadowUnit, PerByteKeyedBySegmentAndOffset) {
  core::SegmentShadow shadow;
  shadow.set(100, 0, 7);
  shadow.set(100, 1, 8);
  shadow.set(200, 0, 9);
  EXPECT_EQ(shadow.get(100, 0), 7u);
  EXPECT_EQ(shadow.get(100, 1), 8u);
  EXPECT_EQ(shadow.get(200, 0), 9u);
  EXPECT_EQ(shadow.get(200, 1), core::kEmptyProv);
  EXPECT_EQ(shadow.get(101, 0), core::kEmptyProv);
  shadow.set(100, 0, core::kEmptyProv);
  EXPECT_EQ(shadow.get(100, 0), core::kEmptyProv);
  EXPECT_EQ(shadow.tainted_bytes(), 2u);
}

TEST(ShadowChannels, NetworkBorneChannelsNeedTheNetflowOrigin) {
  // Ablation: with netflow insertion off, a payload whose ONLY origin is
  // the network never becomes tainted, so neither policy can fire — the
  // same result the ablation bench shows for reflective injection. (The
  // file-borne hollowing attack, by contrast, survives this ablation.)
  core::Options opts;
  opts.track_netflow = false;
  {
    attacks::IpcRelayScenario sc;
    auto run = attacks::analyze(sc, opts);
    ASSERT_TRUE(run.ok()) << run.error().message;
    EXPECT_FALSE(run.value().flagged) << run.value().report;
  }
  {
    attacks::AtomBombingScenario sc;
    auto run = attacks::analyze(sc, opts);
    ASSERT_TRUE(run.ok()) << run.error().message;
    EXPECT_FALSE(run.value().flagged) << run.value().report;
  }
}

TEST(ShadowChannels, ChannelsStillFlagWithFullTagSet) {
  // Sanity companion to the ablation above: with the full tag set both
  // kernel-resident channels produce both-process + netflow chains.
  attacks::AtomBombingScenario sc;
  auto run = attacks::analyze(sc);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value().flagged);
  const auto& f = run.value().findings[0];
  EXPECT_GE(run.value().engine_stats.export_table_reads, 1u);
  (void)f;
}

TEST(ShadowChannels, NewScenariosReplayDeterministically) {
  {
    attacks::AtomBombingScenario sc;
    auto rec = attacks::record_run(sc);
    ASSERT_TRUE(rec.ok());
    auto rep = attacks::replay_run(sc, rec.value().log, nullptr, {});
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().stats.instructions,
              rec.value().stats.instructions);
    EXPECT_EQ(rep.value().console, rec.value().console);
  }
  {
    attacks::IpcRelayScenario sc;
    auto rec = attacks::record_run(sc);
    ASSERT_TRUE(rec.ok());
    auto rep = attacks::replay_run(sc, rec.value().log, nullptr, {});
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().stats.instructions,
              rec.value().stats.instructions);
    EXPECT_EQ(rep.value().console, rec.value().console);
  }
  {
    attacks::DropperChainScenario sc;
    auto rec = attacks::record_run(sc);
    ASSERT_TRUE(rec.ok());
    auto rep = attacks::replay_run(sc, rec.value().log, nullptr, {});
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().stats.instructions,
              rec.value().stats.instructions);
    EXPECT_EQ(rep.value().console, rec.value().console);
  }
}

TEST(ShadowChannels, BenignIdleRunLeavesOnlyExportTableTaint) {
  // With image tainting off, a benign idle workload leaves nothing tainted
  // except the module export tables seeded at boot; with export tracking
  // also off, the shadow is completely empty.
  core::Options opts;
  opts.taint_mapped_images = false;
  attacks::BehaviorScenario benign("plain.exe", {attacks::Behavior::kIdle});
  auto run = attacks::analyze(benign, opts);
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run.value().flagged);
  // 4 bytes per export entry across ntdll/user32/kernel32.
  EXPECT_EQ(run.value().tainted_bytes, 72u);

  core::Options bare = opts;
  bare.track_export = false;
  auto run2 = attacks::analyze(benign, bare);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2.value().tainted_bytes, 0u);
}

}  // namespace
}  // namespace faros
