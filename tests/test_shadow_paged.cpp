// Property tests for the paged shadow memory: randomized
// set/get/clear_range/frame-recycle sequences checked against a reference
// per-byte map model, plus unit coverage for the page-summary bookkeeping
// (tainted counts, page residency, mutation stamps) the engine's fast
// paths rely on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/shadow.h"
#include "vm/phys_mem.h"

namespace faros::core {
namespace {

/// The pre-paging implementation, kept as the executable specification:
/// one hash-map entry per tainted byte.
class ReferenceShadow {
 public:
  ProvListId get(PAddr pa) const {
    auto it = map_.find(pa);
    return it == map_.end() ? kEmptyProv : it->second;
  }

  void set(PAddr pa, ProvListId id) {
    if (id == kEmptyProv) {
      map_.erase(pa);
    } else {
      map_[pa] = id;
    }
  }

  void clear_range(PAddr pa, u64 len) {
    for (u64 i = 0; i < len; ++i) map_.erase(pa + i);
  }

  void clear() { map_.clear(); }
  u64 tainted_bytes() const { return map_.size(); }
  const std::unordered_map<PAddr, ProvListId>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<PAddr, ProvListId> map_;
};

/// Address pool mixing low RAM frames, page-boundary straddles, and the
/// synthetic high-PAddr spaces file/segment shadows borrow, so directory
/// keys span the whole 64-bit range.
PAddr random_pa(Rng& rng) {
  constexpr PAddr kBases[] = {
      0x0,            // frame 0 (cache sentinel edge case)
      0x1000,         // a plain low frame
      0x2000,         // adjacent frame (boundary straddles)
      0x7fff0,        // straddle region
      0x100000,       // distant frame
      0xffffffff000,  // high synthetic space
  };
  PAddr base = kBases[rng.below(std::size(kBases))];
  return base + rng.below(0x2000);  // reach into the following frame too
}

TEST(PagedShadowProperty, AgreesWithReferenceUnderRandomOps) {
  Rng rng(0xfa205'5add0u);
  ShadowMemory paged;
  ReferenceShadow ref;

  // Page residency must track taint exactly: a page whose last tainted
  // byte is cleared is dropped, so pages() equals the number of distinct
  // frames holding taint in the reference. (Checked periodically — the
  // reference walk is O(tainted bytes).)
  auto expect_no_empty_pages = [&](int op) {
    std::set<u64> frames;
    for (const auto& [pa, id] : ref.entries()) {
      frames.insert(pa >> ShadowMemory::kPageShift);
    }
    ASSERT_EQ(paged.pages(), frames.size()) << "op=" << op;
  };

  for (int op = 0; op < 200000; ++op) {
    if (op % 4096 == 0) expect_no_empty_pages(op);
    switch (rng.below(16)) {
      case 0: case 1: case 2: case 3: case 4: case 5: {
        // set: tainted (mostly) or explicit clear via id 0
        PAddr pa = random_pa(rng);
        ProvListId id = rng.chance(0.2)
                            ? kEmptyProv
                            : static_cast<ProvListId>(rng.range(1, 64));
        paged.set(pa, id);
        ref.set(pa, id);
        break;
      }
      case 6: case 7: case 8: case 9: case 10: case 11: {
        PAddr pa = random_pa(rng);
        ASSERT_EQ(paged.get(pa), ref.get(pa)) << "pa=" << pa;
        break;
      }
      case 12: case 13: {
        // clear_range of arbitrary, possibly page-straddling extent
        PAddr pa = random_pa(rng);
        u64 len = rng.below(2 * ShadowMemory::kPageBytes);
        paged.clear_range(pa, len);
        ref.clear_range(pa, len);
        break;
      }
      case 14: {
        // frame recycle: exactly what on_frame_recycled does
        PAddr frame = random_pa(rng) & ~static_cast<PAddr>(
                                           ShadowMemory::kPageMask);
        paged.clear_range(frame, vm::kPageSize);
        ref.clear_range(frame, vm::kPageSize);
        break;
      }
      case 15: {
        // const-path get must agree with the cached hot-path get
        const ShadowMemory& cpaged = paged;
        PAddr pa = random_pa(rng);
        ASSERT_EQ(cpaged.get(pa), ref.get(pa));
        break;
      }
    }
    ASSERT_EQ(paged.tainted_bytes(), ref.tainted_bytes()) << "op=" << op;
  }

  expect_no_empty_pages(200000);

  // Exhaustive final agreement in both directions: every byte the paged
  // shadow reports exists identically in the reference...
  std::map<PAddr, ProvListId> from_paged;
  paged.for_each_tainted([&](PAddr pa, ProvListId id) {
    EXPECT_TRUE(from_paged.emplace(pa, id).second)
        << "duplicate visit of pa=" << pa;
  });
  ASSERT_EQ(from_paged.size(), ref.entries().size());
  for (const auto& [pa, id] : ref.entries()) {
    auto it = from_paged.find(pa);
    ASSERT_NE(it, from_paged.end()) << "missing pa=" << pa;
    EXPECT_EQ(it->second, id) << "pa=" << pa;
  }
}

TEST(PagedShadow, PageResidencyFollowsTaint) {
  ShadowMemory s;
  EXPECT_EQ(s.pages(), 0u);
  s.set(0x1000, 7);
  s.set(0x1fff, 9);
  s.set(0x3000, 5);
  EXPECT_EQ(s.pages(), 2u);
  EXPECT_EQ(s.tainted_bytes(), 3u);

  // Clearing the last tainted byte of a page drops the page: an empty
  // page is pure overhead (directory slot + 16KiB of zeros) and its
  // absence is what keeps the clean fast paths one-probe cheap.
  s.set(0x1000, kEmptyProv);
  EXPECT_EQ(s.pages(), 2u);  // 0x1fff still taints frame 1
  s.set(0x1fff, kEmptyProv);
  EXPECT_EQ(s.pages(), 1u);
  EXPECT_EQ(s.tainted_bytes(), 1u);
  EXPECT_FALSE(s.page_tainted(0x1000));
  // Re-clearing an absent page is a no-op.
  s.clear_range(0x1000, ShadowMemory::kPageBytes);
  EXPECT_EQ(s.pages(), 1u);
  // A partial clear_range that empties the page drops it too.
  s.set(0x3001, 6);
  EXPECT_EQ(s.pages(), 1u);
  s.clear_range(0x3000, 2);  // clears both remaining bytes of frame 3
  EXPECT_EQ(s.pages(), 0u);
  EXPECT_EQ(s.tainted_bytes(), 0u);

  // Whole-page clear_range drops the page without a byte walk.
  s.set(0x3000, 5);
  s.clear_range(0x3000, ShadowMemory::kPageBytes);
  EXPECT_EQ(s.pages(), 0u);
  EXPECT_EQ(s.tainted_bytes(), 0u);
}

TEST(PagedShadow, RangeAndPageProbes) {
  ShadowMemory s;
  EXPECT_FALSE(s.range_tainted(0x0, 8));
  EXPECT_FALSE(s.page_tainted(0x1234));

  s.set(0x1ffe, 3);  // near the end of frame 1
  EXPECT_TRUE(s.page_tainted(0x1000));
  EXPECT_TRUE(s.page_tainted(0x1fff));
  EXPECT_FALSE(s.page_tainted(0x2000));
  // An 8-byte probe straddling frames 1 and 2 sees frame 1's taint.
  EXPECT_TRUE(s.range_tainted(0x1ffc, 8));
  // A probe fully inside clean frame 2 does not.
  EXPECT_FALSE(s.range_tainted(0x2000, 8));
  // Probes see through the one-entry frame cache after a clear.
  s.clear_range(0x1000, ShadowMemory::kPageBytes);
  EXPECT_FALSE(s.range_tainted(0x1ffc, 8));
}

TEST(PagedShadow, VersionStampsAreMonotonicAndChangeOnMutation) {
  ShadowMemory s;
  EXPECT_EQ(s.page_version(0x5000), 0u);
  s.set(0x5000, 1);
  u64 v1 = s.page_version(0x5000);
  ASSERT_NE(v1, 0u);

  // Redundant write (same id): no semantic change, stamp must hold so the
  // engine's fetch cache stays valid.
  s.set(0x5000, 1);
  EXPECT_EQ(s.page_version(0x5000), v1);

  s.set(0x5001, 2);
  u64 v2 = s.page_version(0x5000);
  EXPECT_GT(v2, v1);

  // Partial clear bumps; recreation after a full drop must not reuse an
  // old stamp (ABA), so the new stamp is strictly larger still.
  s.clear_range(0x5001, 1);
  u64 v3 = s.page_version(0x5000);
  EXPECT_GT(v3, v2);
  s.clear_range(0x5000, ShadowMemory::kPageBytes);
  EXPECT_EQ(s.page_version(0x5000), 0u);
  s.set(0x5000, 4);
  EXPECT_GT(s.page_version(0x5000), v3);
}

// Regression: ranges at the very top of the 64-bit physical space used to
// compute pa + len (or pa + len - 1) and wrap, so the end frame came out
// as ~0 or 0 and the walk either skipped every page silently or read the
// wrong extent. Both probes and clears must clamp to the last byte.
TEST(PagedShadow, TopOfPhysicalMemoryRangesDoNotOverflow) {
  constexpr PAddr kTop = ~static_cast<PAddr>(0);        // 0xffff...ffff
  constexpr PAddr kLastFrame = kTop & ~static_cast<PAddr>(
                                          ShadowMemory::kPageMask);

  ShadowMemory s;
  s.set(kTop, 42);
  EXPECT_EQ(s.get(kTop), 42u);

  // pa + len == 2^64 exactly (range ends at the last byte).
  EXPECT_TRUE(s.range_tainted(kLastFrame, ShadowMemory::kPageBytes));
  EXPECT_TRUE(s.range_tainted(kTop, 1));
  // pa + len wraps *past* 2^64: the probe must still see the taint, not
  // compute an end frame of 0 and skip the walk.
  EXPECT_TRUE(s.range_tainted(kLastFrame - 8, 3 * ShadowMemory::kPageBytes));
  EXPECT_TRUE(s.range_tainted(kTop, 8));
  EXPECT_TRUE(s.range_tainted(kTop - 3, 100));

  // A clamped probe must not report taint that is not there.
  ShadowMemory clean;
  clean.set(0x1000, 7);  // low page only
  EXPECT_FALSE(clean.range_tainted(kTop - 100, 500));

  // clear_range with a wrapping extent clears up to the top and stops.
  s.set(kLastFrame, 9);
  s.set(kLastFrame - 1, 11);  // second-to-last frame, must survive
  s.clear_range(kLastFrame, 2 * ShadowMemory::kPageBytes);
  EXPECT_EQ(s.get(kTop), kEmptyProv);
  EXPECT_EQ(s.get(kLastFrame), kEmptyProv);
  EXPECT_EQ(s.get(kLastFrame - 1), 11u);
  EXPECT_EQ(s.tainted_bytes(), 1u);

  // len == 0 at the top is a no-op, not a full-range clear.
  s.clear_range(kTop, 0);
  EXPECT_FALSE(s.range_tainted(kTop, 0));
  EXPECT_EQ(s.get(kLastFrame - 1), 11u);
}

TEST(PagedShadow, ClearResetsEverything) {
  ShadowMemory s;
  for (u32 i = 0; i < 4; ++i) s.set(0x1000 * i + i, i + 1);
  ASSERT_GT(s.tainted_bytes(), 0u);
  s.clear();
  EXPECT_EQ(s.tainted_bytes(), 0u);
  EXPECT_EQ(s.pages(), 0u);
  EXPECT_EQ(s.get(0x1001), kEmptyProv);
  u64 visits = 0;
  s.for_each_tainted([&](PAddr, ProvListId) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

}  // namespace
}  // namespace faros::core
