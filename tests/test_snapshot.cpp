// Snapshot/COW guest cloning (os/snapshot.h + vm/phys_mem.h COW mode):
// clone isolation from the frozen image and from sibling clones, COW fault
// accounting, FrameAllocator state round-trips, boot-from-snapshot
// equivalence with a cold boot, config-mismatch rejection, interleaved
// clone determinism, and farm verdict byte-equivalence snapshot-on vs off.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "attacks/corpus.h"
#include "attacks/scenarios.h"
#include "core/analyst.h"
#include "core/engine.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "os/machine.h"
#include "os/snapshot.h"
#include "vm/phys_mem.h"

namespace faros {
namespace {

using vm::FrameAllocator;
using vm::kPageSize;
using vm::MemImage;
using vm::PhysMem;

// --- PhysMem COW semantics --------------------------------------------------

TEST(PhysMemCow, CloneReadsImageAndFaultsPrivatelyOnWrite) {
  PhysMem owned{1u << 16};  // 16 frames
  owned.write32(0x10, 0xdeadbeefu);
  owned.write8(0x1000, 7);
  EXPECT_FALSE(owned.cow_stats().cow);
  auto img = owned.freeze();

  PhysMem c1{img};
  PhysMem c2{img};
  EXPECT_TRUE(c1.cow_stats().cow);
  EXPECT_EQ(c1.cow_stats().cow_faults, 0u);
  EXPECT_EQ(c1.cow_stats().shared_frames, 16u);
  EXPECT_EQ(c1.read32(0x10), 0xdeadbeefu);
  EXPECT_EQ(c2.read8(0x1000), 7u);

  // First write faults exactly one frame; the image and the sibling clone
  // never see it.
  c1.write32(0x10, 0x11111111u);
  EXPECT_EQ(c1.cow_stats().cow_faults, 1u);
  EXPECT_EQ(c1.cow_stats().shared_frames, 15u);
  EXPECT_EQ(c1.read32(0x10), 0x11111111u);
  EXPECT_EQ(c2.read32(0x10), 0xdeadbeefu);
  EXPECT_EQ(img->ram[0x10], 0xefu);

  // Later writes to an already-private frame take no further fault; the
  // rest of the frame keeps the image contents.
  c1.write8(0x14, 9);
  EXPECT_EQ(c1.cow_stats().cow_faults, 1u);
  EXPECT_EQ(c1.read8(0x1000), 7u);

  // The donor PhysMem is untouched by clone activity.
  EXPECT_EQ(owned.read32(0x10), 0xdeadbeefu);
}

TEST(PhysMemCow, BulkOpsFaultPerFrameAndFreezeRoundTrips) {
  PhysMem owned{1u << 15};  // 8 frames
  auto img = owned.freeze();
  PhysMem c{img};

  // A bulk write starting mid-frame spans 4 frames -> 4 faults.
  std::vector<u8> buf(3 * kPageSize);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<u8>(i * 131 + 7);
  }
  c.write(0x800, ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(c.cow_stats().cow_faults, 4u);
  EXPECT_EQ(c.cow_stats().shared_frames, 4u);

  std::vector<u8> back(buf.size());
  c.read(0x800, MutByteSpan(back.data(), back.size()));
  EXPECT_EQ(back, buf);

  // Freezing a dirty clone materialises private + still-shared frames into
  // one coherent image a second-generation clone reads back exactly.
  auto img2 = c.freeze();
  PhysMem c2{img2};
  std::vector<u8> again(buf.size());
  c2.read(0x800, MutByteSpan(again.data(), again.size()));
  EXPECT_EQ(again, buf);
  EXPECT_EQ(c2.read8(0x7fff), 0u);  // untouched tail frame is still zero

  // The first-generation image stayed zero throughout.
  for (u32 pa = 0x800; pa < 0x800 + 64; ++pa) {
    EXPECT_EQ(img->ram[pa], 0u);
  }
}

TEST(PhysMemCow, WatchStateIsPerInstanceNotPartOfTheImage) {
  // The btcache watch set belongs to one machine's cache; clones must come
  // up unwatched (their caches start cold and re-watch as they translate).
  PhysMem owned{1u << 14};
  owned.watch_frame(0, 0, 64);
  auto img = owned.freeze();
  PhysMem c{img};
  EXPECT_TRUE(owned.frame_watched(0));
  EXPECT_FALSE(c.frame_watched(0));
}

TEST(FrameAllocatorSnap, StateRestoreReproducesTheAllocationStream) {
  FrameAllocator a{16};
  a.reserve(0);
  ASSERT_TRUE(a.alloc().ok());
  auto f = a.alloc();
  ASSERT_TRUE(f.ok());
  a.free(f.value());

  FrameAllocator b{16};
  b.restore(a.state());
  EXPECT_EQ(b.free_frames(), a.free_frames());
  // Restored allocator continues the exact same deterministic stream.
  for (int i = 0; i < 8; ++i) {
    auto fa = a.alloc();
    auto fb = b.alloc();
    ASSERT_TRUE(fa.ok());
    ASSERT_TRUE(fb.ok());
    EXPECT_EQ(fa.value(), fb.value()) << i;
  }
}

// --- kernel snapshot capture / restore --------------------------------------

TEST(Snapshot, BootFromSnapshotMatchesColdBoot) {
  os::KernelConfig cfg;
  auto snap = os::capture_snapshot(cfg);
  ASSERT_TRUE(snap.ok()) << snap.error().message;
  EXPECT_EQ(snap.value()->ram_bytes, cfg.ram_bytes);
  EXPECT_GT(snap.value()->frames.free_count, 0u);

  os::KernelConfig warm_cfg = cfg;
  warm_cfg.snapshot = snap.value();
  os::Kernel warm(warm_cfg);
  os::Kernel cold(cfg);
  ASSERT_TRUE(warm.boot().ok());
  ASSERT_TRUE(cold.boot().ok());

  ASSERT_EQ(warm.modules().size(), cold.modules().size());
  for (size_t i = 0; i < warm.modules().size(); ++i) {
    EXPECT_EQ(warm.modules()[i].name, cold.modules()[i].name);
    EXPECT_EQ(warm.modules()[i].base, cold.modules()[i].base);
    EXPECT_EQ(warm.modules()[i].size, cold.modules()[i].size);
    EXPECT_EQ(warm.modules()[i].exports_va, cold.modules()[i].exports_va);
    EXPECT_EQ(warm.modules()[i].export_count, cold.modules()[i].export_count);
  }
  EXPECT_EQ(warm.console(), cold.console());
  EXPECT_EQ(warm.frame_alloc().free_frames(), cold.frame_alloc().free_frames());
  EXPECT_EQ(warm.kernel_as().cr3(), snap.value()->kernel_cr3);
  // The clone has not written a single frame yet.
  EXPECT_TRUE(warm.phys_mem().cow_stats().cow);
  EXPECT_EQ(warm.phys_mem().cow_stats().cow_faults, 0u);
}

TEST(Snapshot, ConfigMismatchIsRejectedAtBoot) {
  os::KernelConfig cfg;
  auto snap = os::capture_snapshot(cfg);
  ASSERT_TRUE(snap.ok()) << snap.error().message;

  os::KernelConfig wrong = cfg;
  wrong.rng_seed = cfg.rng_seed + 1;
  wrong.snapshot = snap.value();
  os::Kernel k(wrong);
  auto b = k.boot();
  ASSERT_FALSE(b.ok());
  EXPECT_NE(b.error().message.find("mismatch"), std::string::npos);
}

// --- clone determinism ------------------------------------------------------

// Replays one recorded thread-hijack run on three coexisting snapshot
// clones and one cold machine, advancing the clones in interleaved budget
// slices. Every machine must retire the same instructions and produce the
// same findings and console — clone runs perturb neither the shared image
// nor each other.
TEST(Snapshot, InterleavedClonesReplayIdenticallyToColdBoot) {
  attacks::ThreadHijackScenario rec_sc;
  auto rec = attacks::record_run(rec_sc);
  ASSERT_TRUE(rec.ok()) << rec.error().message;

  os::MachineConfig mcfg;
  auto snap = os::capture_snapshot(mcfg.kernel);
  ASSERT_TRUE(snap.ok()) << snap.error().message;

  struct Run {
    std::unique_ptr<attacks::ThreadHijackScenario> sc;
    std::unique_ptr<os::Machine> m;
    std::unique_ptr<core::FarosEngine> engine;
    u64 instructions = 0;
    bool done = false;
  };
  std::vector<Run> runs;
  for (int i = 0; i < 4; ++i) {
    os::MachineConfig c = mcfg;
    if (i > 0) c.kernel.snapshot = snap.value();  // run 0 is the cold control
    Run r;
    r.sc = std::make_unique<attacks::ThreadHijackScenario>();
    r.m = std::make_unique<os::Machine>(c);
    r.engine = std::make_unique<core::FarosEngine>(r.m->kernel());
    r.m->attach_cpu_plugin(r.engine.get());
    r.m->add_monitor(r.engine.get());
    ASSERT_TRUE(r.m->boot().ok()) << i;
    ASSERT_TRUE(r.sc->setup(*r.m).ok()) << i;
    r.m->load_replay(rec.value().log);
    runs.push_back(std::move(r));
  }

  // Round-robin small slices so the clones genuinely run interleaved.
  const u64 kSlice = 10'000;
  bool progress = true;
  while (progress) {
    progress = false;
    for (Run& r : runs) {
      if (r.done || r.instructions >= rec_sc.budget()) continue;
      auto st = r.m->run(kSlice);
      r.instructions += st.instructions;
      if (st.all_exited || st.instructions == 0) r.done = true;
      progress = true;
    }
  }

  const Run& cold = runs[0];
  EXPECT_FALSE(cold.engine->findings().empty());
  for (size_t i = 1; i < runs.size(); ++i) {
    const Run& r = runs[i];
    EXPECT_EQ(r.instructions, cold.instructions) << "clone " << i;
    EXPECT_EQ(r.m->kernel().console(), cold.m->kernel().console())
        << "clone " << i;
    ASSERT_EQ(r.engine->findings().size(), cold.engine->findings().size())
        << "clone " << i;
    EXPECT_EQ(core::summarize_findings(r.engine->findings()).by_policy,
              core::summarize_findings(cold.engine->findings()).by_policy)
        << "clone " << i;
    EXPECT_GT(r.m->kernel().phys_mem().cow_stats().cow_faults, 0u);
  }
}

// --- farm equivalence -------------------------------------------------------

std::vector<farm::JobSpec> injection_jobs() {
  std::vector<farm::JobSpec> jobs;
  for (const auto& e : attacks::injection_corpus()) {
    farm::JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

TEST(SnapshotFarm, VerdictStreamIsByteIdenticalSnapshotOnVsOff) {
  farm::FarmConfig on_cfg;
  on_cfg.workers = 4;
  on_cfg.snapshot = true;

  farm::FarmConfig off_cfg;
  off_cfg.workers = 1;
  off_cfg.snapshot = false;

  auto on = farm::Farm(on_cfg).run(injection_jobs());
  auto off = farm::Farm(off_cfg).run(injection_jobs());
  ASSERT_EQ(on.results.size(), off.results.size());
  for (size_t i = 0; i < on.results.size(); ++i) {
    EXPECT_EQ(on.results[i].status, farm::JobStatus::kOk)
        << on.results[i].name;
    EXPECT_EQ(farm::job_jsonl(on.results[i]), farm::job_jsonl(off.results[i]))
        << on.results[i].name;
  }
}

}  // namespace
}  // namespace faros
