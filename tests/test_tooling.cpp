// Analyst tooling: the execution tracer (ring buffer, chaining, per-space
// counters) and the taint-map / finding-summary helpers.
#include <gtest/gtest.h>

#include "attacks/scenarios.h"
#include "core/analyst.h"
#include "vm/tracer.h"

namespace faros {
namespace {

TEST(Tracer, RecordsRetiredInstructionsAndChains) {
  os::Machine m;
  vm::Tracer tracer(/*capacity=*/8);
  core::FarosEngine engine(m.kernel(), core::Options{});
  tracer.chain(&engine);
  m.attach_cpu_plugin(&tracer);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());

  os::ImageBuilder ib("t.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  for (int i = 0; i < 20; ++i) a.addi(vm::R1, vm::R1, 1);
  a.halt();
  auto img = ib.build();
  m.kernel().vfs().create("C:/t.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/t.exe");
  ASSERT_TRUE(pid.ok());
  PAddr cr3 = m.kernel().find(pid.value())->as.cr3();
  m.run(1000);

  EXPECT_EQ(tracer.total(), 21u);
  EXPECT_EQ(tracer.count_for(cr3), 21u);
  EXPECT_EQ(tracer.entries().size(), 8u);  // ring capacity respected
  EXPECT_EQ(tracer.entries().back().insn.op, vm::Opcode::kHalt);
  // The chained engine saw everything too.
  EXPECT_EQ(engine.stats().insns_seen, 21u);

  std::string dump = tracer.dump(4);
  EXPECT_NE(dump.find("halt"), std::string::npos);
  EXPECT_NE(dump.find("addi r1, r1, 1"), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.total(), 0u);
  EXPECT_TRUE(tracer.entries().empty());
}

TEST(Tracer, RecordsMemoryAccesses) {
  os::Machine m;
  vm::Tracer tracer;
  m.attach_cpu_plugin(&tracer);
  ASSERT_TRUE(m.boot().ok());
  os::ImageBuilder ib("mem.exe", os::kUserImageBase);
  auto& a = ib.asm_();
  a.label("_start");
  a.movi_label(vm::R1, "buf");
  a.movi(vm::R2, 5);
  a.st32(vm::R1, 0, vm::R2);
  a.ld32(vm::R3, vm::R1, 0);
  a.halt();
  a.align(8);
  a.label("buf");
  a.zeros(8);
  auto img = ib.build();
  m.kernel().vfs().create("C:/mem.exe", img.value().serialize());
  ASSERT_TRUE(m.kernel().spawn("C:/mem.exe").ok());
  m.run(1000);

  int writes = 0, reads = 0;
  for (const auto& e : tracer.entries()) {
    if (e.has_mem && e.mem_write) ++writes;
    if (e.has_mem && !e.mem_write) ++reads;
  }
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(reads, 1);
}

TEST(Analyst, TaintedRegionsCoalesceByProvenance) {
  attacks::ReflectiveDllScenario sc(attacks::ReflectiveVariant::kMeterpreter);
  auto rec = attacks::record_run(sc);
  ASSERT_TRUE(rec.ok());

  os::Machine m;
  core::FarosEngine engine(m.kernel(), core::Options{});
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());
  ASSERT_TRUE(sc.setup(m).ok());
  m.load_replay(rec.value().log);
  m.run(sc.budget());

  // The victim holds a tainted injected region.
  os::Process* victim = m.kernel().find_by_name("notepad.exe");
  ASSERT_NE(victim, nullptr);
  const os::Region* injected = nullptr;
  for (const auto& r : victim->regions) {
    if (r.kind == os::Region::Kind::kAlloc) injected = &r;
  }
  ASSERT_NE(injected, nullptr);
  auto regions = core::tainted_regions(engine, victim->as, injected->base,
                                       injected->base + injected->len);
  ASSERT_FALSE(regions.empty());
  u32 total = 0;
  for (const auto& r : regions) {
    total += r.len;
    EXPECT_TRUE(engine.store().contains_type(r.prov,
                                             core::TagType::kNetflow));
  }
  EXPECT_GT(total, 100u);  // the payload body

  // The full map mentions the victim and a netflow chain.
  std::string map = core::taint_map(engine, m.kernel());
  EXPECT_NE(map.find("notepad.exe"), std::string::npos);
  EXPECT_NE(map.find("NetFlow"), std::string::npos);

  auto summary = core::summarize_findings(engine.findings());
  EXPECT_GT(summary.total, 0u);
  EXPECT_EQ(summary.whitelisted, 0u);
  EXPECT_GT(summary.by_policy.count("netflow-export-confluence"), 0u);
  EXPECT_GT(summary.by_process.count("notepad.exe"), 0u);
  std::string rendered = core::render_summary(summary);
  EXPECT_NE(rendered.find("netflow-export-confluence"), std::string::npos);
}

TEST(Analyst, TaintedRegionsRespectsLimitsAndGaps) {
  os::Machine m;
  core::Options opts;
  opts.taint_mapped_images = false;
  core::FarosEngine engine(m.kernel(), opts);
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  ASSERT_TRUE(m.boot().ok());
  os::ImageBuilder ib("g.exe", os::kUserImageBase);
  ib.asm_().label("_start");
  ib.asm_().halt();
  ib.asm_().zeros(64);
  auto img = ib.build();
  m.kernel().vfs().create("C:/g.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/g.exe", /*suspended=*/true);
  os::Process* p = m.kernel().find(pid.value());

  // Two tainted runs separated by a gap.
  FlowTuple flow{1, 2, 3, 4};
  osi::GuestXfer x1{p->info(), &p->as, os::kUserImageBase + 16, 4};
  osi::GuestXfer x2{p->info(), &p->as, os::kUserImageBase + 32, 4};
  engine.on_packet_to_guest(x1, flow);
  engine.on_packet_to_guest(x2, flow);

  auto regions = core::tainted_regions(engine, p->as, os::kUserImageBase,
                                       os::kUserImageBase + 64);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].start, os::kUserImageBase + 16);
  EXPECT_EQ(regions[0].len, 4u);
  EXPECT_EQ(regions[1].start, os::kUserImageBase + 32);

  // max_regions cap.
  auto capped = core::tainted_regions(engine, p->as, os::kUserImageBase,
                                      os::kUserImageBase + 64, 1);
  EXPECT_EQ(capped.size(), 1u);
}

}  // namespace
}  // namespace faros
