// Assembler (labels, fixups, data directives) and replay-log serialization.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "vm/assembler.h"
#include "vm/replay.h"

namespace faros::vm {
namespace {

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a;
  a.jmp("fwd");       // forward reference
  a.label("back");
  a.halt();
  a.label("fwd");
  a.jmp("back");      // backward reference
  auto blob = a.assemble(0x1000);
  ASSERT_TRUE(blob.ok());
  // insn0: jmp +8 (to offset 16 from next=8).
  auto insn0 = decode(ByteSpan(blob.value().data(), 8));
  ASSERT_TRUE(insn0);
  EXPECT_EQ(insn0->simm(), 8);
  // insn2 at offset 16: jmp back to offset 8: target 8, next = 24 -> -16.
  auto insn2 = decode(ByteSpan(blob.value().data() + 16, 8));
  ASSERT_TRUE(insn2);
  EXPECT_EQ(insn2->simm(), -16);
}

TEST(Assembler, AbsoluteLabelsUseBase) {
  Assembler a;
  a.movi_label(R1, "data");
  a.halt();
  a.label("data");
  a.data_u32(42);
  auto blob = a.assemble(0x400000);
  ASSERT_TRUE(blob.ok());
  auto insn = decode(ByteSpan(blob.value().data(), 8));
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->imm, 0x400000u + 16);
}

TEST(Assembler, UndefinedLabelFailsWithName) {
  Assembler a;
  a.jmp("missing");
  auto blob = a.assemble(0);
  ASSERT_FALSE(blob.ok());
  EXPECT_NE(blob.error().message.find("missing"), std::string::npos);
}

TEST(Assembler, DuplicateLabelFailsHardNamingTheLabel) {
  Assembler a;
  a.label("twice");
  a.nop();
  a.label("twice");
  a.jmp("twice");
  auto blob = a.assemble(0);
  ASSERT_FALSE(blob.ok());
  EXPECT_NE(blob.error().message.find("duplicate"), std::string::npos);
  EXPECT_NE(blob.error().message.find("twice"), std::string::npos);
  // The first definition wins for anything still consulting the table.
  auto off = a.label_offset("twice");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), 0u);
}

TEST(Assembler, AbsoluteFixupPastAddressSpaceFailsWithName) {
  Assembler a;
  a.movi_label(Reg::R1, "far");
  a.label("far");
  auto blob = a.assemble(0xfffffff8);  // label lands past 2^32
  ASSERT_FALSE(blob.ok());
  EXPECT_NE(blob.error().message.find("far"), std::string::npos);
}

TEST(Assembler, LabelOffsetQuery) {
  Assembler a;
  a.nop();
  a.nop();
  a.label("here");
  a.halt();
  auto off = a.label_offset("here");
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), 16u);
  EXPECT_FALSE(a.label_offset("nope").ok());
}

TEST(Assembler, DataDirectivesAndAlignment) {
  Assembler a;
  a.data_str("abc", true);
  a.align(8);
  EXPECT_EQ(a.size() % 8, 0u);
  a.data_u32(0x11223344);
  a.zeros(3);
  auto blob = a.assemble(0);
  ASSERT_TRUE(blob.ok());
  const Bytes& b = blob.value();
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[3], 0u);  // NUL
  EXPECT_EQ(b[8], 0x44);
  EXPECT_EQ(b[11], 0x11);
}

TEST(Assembler, RelativeTargetsAreBaseIndependent) {
  Assembler a;
  a.jmp("end");
  a.nop();
  a.label("end");
  a.halt();
  auto b1 = a.assemble(0);
  auto b2 = a.assemble(0x7654000);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_EQ(b1.value(), b2.value());  // PIC when only relative refs used
}

TEST(ReplayLog, SerializeDeserializeRoundTrip) {
  ReplayLog log;
  ReplayEvent ev1;
  ev1.instr_index = 12345;
  ev1.kind = EventKind::kPacketIn;
  ev1.channel = 49162;
  ev1.flow = FlowTuple{0xa9fe1aa1, 4444, 0xa9fe39a8, 49162};
  ev1.payload = Bytes{1, 2, 3, 4, 5};
  log.append(ev1);
  ReplayEvent ev2;
  ev2.instr_index = 99999;
  ev2.kind = EventKind::kDeviceInput;
  ev2.channel = 1;
  ev2.payload = Bytes{'k', 'e', 'y'};
  log.append(ev2);

  Bytes wire = log.serialize();
  auto back = ReplayLog::deserialize(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), log);
}

TEST(ReplayLog, RejectsCorruptInput) {
  ReplayLog log;
  ReplayEvent ev;
  ev.payload = Bytes(64, 9);
  log.append(ev);
  Bytes wire = log.serialize();
  EXPECT_FALSE(ReplayLog::deserialize(ByteSpan(wire.data(), 6)).ok());
  wire[0] ^= 0xff;  // magic
  EXPECT_FALSE(ReplayLog::deserialize(wire).ok());
}

TEST(ReplayLog, RandomRoundTripProperty) {
  Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    ReplayLog log;
    u32 n = static_cast<u32>(rng.below(16));
    for (u32 i = 0; i < n; ++i) {
      ReplayEvent ev;
      ev.instr_index = rng.next_u64() >> 8;
      ev.kind = rng.chance(0.5) ? EventKind::kPacketIn
                                : EventKind::kDeviceInput;
      ev.channel = rng.next_u32();
      ev.flow.src_ip = rng.next_u32();
      ev.flow.src_port = static_cast<u16>(rng.next_u32());
      ev.flow.dst_ip = rng.next_u32();
      ev.flow.dst_port = static_cast<u16>(rng.next_u32());
      ev.payload = rng.bytes(rng.below(256));
      log.append(std::move(ev));
    }
    auto back = ReplayLog::deserialize(log.serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), log);
  }
}

}  // namespace
}  // namespace faros::vm
