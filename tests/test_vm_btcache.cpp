// Block-translation cache: translate/hit accounting, self-modifying code
// (guest stores into the executing block, host writes, randomized write
// fuzzing against the uncached interpreter), CR3 recycling across process
// lifetimes, engine elision accounting, and detection equivalence over a
// corpus slice with the cache on vs off.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "attacks/corpus.h"
#include "attacks/guest_common.h"
#include "core/engine.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "os/machine.h"
#include "os/runtime.h"
#include "vm/assembler.h"
#include "vm/btcache.h"
#include "vm/cpu.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros {
namespace {

using vm::AddressSpace;
using vm::Assembler;
using vm::CpuState;
using vm::FrameAllocator;
using vm::Instruction;
using vm::Interpreter;
using vm::Opcode;
using vm::PhysMem;
using vm::StepInfo;
using vm::StepResult;
using vm::R1;
using vm::R2;
using vm::R3;
using vm::R4;
using vm::R5;
using vm::SP;

constexpr VAddr kCodeBase = 0x10000;
constexpr VAddr kStackTop = 0x80000;
constexpr VAddr kDataBase = 0x40000;

struct CpuEnv {
  PhysMem mem{1u << 20};
  FrameAllocator frames{0};
  AddressSpace as;
  Interpreter interp{mem};
  CpuState cpu;

  explicit CpuEnv(bool block_cache = true) : frames(mem.num_frames()) {
    interp.set_block_cache_enabled(block_cache);
    frames.reserve(0);
    as = AddressSpace::create(mem, frames).value();
    EXPECT_TRUE(
        as.map_alloc(kStackTop - 0x2000, 0x2000, vm::kPteUser | vm::kPteWrite)
            .ok());
    EXPECT_TRUE(
        as.map_alloc(kDataBase, 0x1000, vm::kPteUser | vm::kPteWrite).ok());
    cpu.regs[SP] = kStackTop - 16;
  }

  void load(const Assembler& a, VAddr base = kCodeBase) {
    auto blob = a.assemble(base);
    ASSERT_TRUE(blob.ok()) << blob.error().message;
    ASSERT_TRUE(as.map_alloc(base, static_cast<u32>(blob.value().size()),
                             vm::kPteUser | vm::kPteWrite | vm::kPteExec)
                    .ok());
    ASSERT_TRUE(as.copy_in(base, blob.value(), false).ok());
    cpu.set_pc(base);
  }

  StepInfo run(u64 budget = 100000) { return interp.run(cpu, as, budget); }
};

TEST(BtCacheIsa, TaintInertClassificationIsPinned) {
  // Memory ops, stack ops, syscalls, lifecycle and trapping opcodes must
  // never be elidable; pure register arithmetic and control flow must be.
  for (Opcode op : {Opcode::kLd8, Opcode::kLd16, Opcode::kLd32, Opcode::kSt8,
                    Opcode::kSt16, Opcode::kSt32, Opcode::kPush, Opcode::kPop,
                    Opcode::kSyscall, Opcode::kHalt, Opcode::kBrk,
                    Opcode::kDivu}) {
    EXPECT_FALSE(vm::taint_inert(op)) << static_cast<u32>(op);
  }
  for (Opcode op : {Opcode::kNop, Opcode::kMovi, Opcode::kMov, Opcode::kAddPc,
                    Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kAnd,
                    Opcode::kAddi, Opcode::kCmp, Opcode::kCmpi, Opcode::kJmp,
                    Opcode::kJr, Opcode::kBeq, Opcode::kBne, Opcode::kCall,
                    Opcode::kRet}) {
    EXPECT_TRUE(vm::taint_inert(op)) << static_cast<u32>(op);
  }
}

TEST(BtCache, LoopTranslatesOnceAndHitsThereafter) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 0);
  a.movi(R2, 500);
  a.label("loop");
  a.addi(R1, R1, 1);
  a.cmp(R1, R2);
  a.bne("loop");
  a.halt();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R1], 500u);

  const vm::BlockCache* btc = env.interp.block_cache();
  ASSERT_NE(btc, nullptr);
  // Two static blocks (entry, loop body); ~500 loop iterations must be
  // cache hits, not retranslations.
  EXPECT_LE(btc->stats().translated, 4u);
  EXPECT_GE(btc->stats().hits, 490u);
  EXPECT_EQ(btc->stats().evict_smc, 0u);
}

TEST(BtCache, CacheOffDisablesTheCacheEntirely) {
  CpuEnv env(/*block_cache=*/false);
  Assembler a;
  a.movi(R1, 7);
  a.halt();
  env.load(a);
  EXPECT_EQ(env.run().result, StepResult::kHalt);
  EXPECT_EQ(env.interp.block_cache(), nullptr);
}

// A store that patches the immediate word of a *later* instruction in the
// same basic block. Per-instruction fetch semantics require the patched
// value to execute; the cached body must notice the eviction mid-block.
void assemble_imm_patcher(Assembler& a) {
  a.addpc_label(R1, "target");
  a.movi(R2, 222);
  a.st32(R1, 4, R2);  // imm32 lives at insn offset +4
  a.label("target");
  a.movi(R4, 111);
  a.halt();
}

TEST(BtCache, GuestStorePatchesLaterInsnOfOwnBlock) {
  for (bool cache : {true, false}) {
    CpuEnv env(cache);
    Assembler a;
    assemble_imm_patcher(a);
    env.load(a);
    auto info = env.run();
    EXPECT_EQ(info.result, StepResult::kHalt) << cache;
    EXPECT_EQ(env.cpu.regs[R4], 222u) << cache;
    if (cache) {
      EXPECT_GE(env.interp.block_cache()->stats().evict_smc, 1u);
    }
  }
}

TEST(BtCache, GuestStoreRewritesLaterInsnIntoHalt) {
  // Patching word0 to 0x00000001 turns the target movi into halt (op=0x01,
  // rd=rs1=rs2=0); the following movi must never execute.
  for (bool cache : {true, false}) {
    CpuEnv env(cache);
    Assembler a;
    a.addpc_label(R1, "target");
    a.movi(R2, 1);
    a.st32(R1, 0, R2);
    a.label("target");
    a.movi(R4, 111);  // becomes halt
    a.movi(R5, 55);   // dead after the patch
    a.halt();
    env.load(a);
    auto info = env.run();
    EXPECT_EQ(info.result, StepResult::kHalt) << cache;
    EXPECT_EQ(env.cpu.regs[R4], 0u) << cache;
    EXPECT_EQ(env.cpu.regs[R5], 0u) << cache;
  }
}

TEST(BtCache, HostWriteEvictsTranslatedFrameAndRetranslates) {
  CpuEnv env;
  Assembler a;
  a.movi(R3, 5);
  a.halt();
  env.load(a);
  EXPECT_EQ(env.run().result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R3], 5u);
  const u64 translated_before = env.interp.block_cache()->stats().translated;

  // Patch the immediate through the address space (lands via PhysMem::write,
  // which must fire the code-write observer before the bytes change).
  const u32 imm = 9;
  std::vector<u8> word(4);
  std::memcpy(word.data(), &imm, 4);
  ASSERT_TRUE(env.as.copy_in(kCodeBase + 4, word, false).ok());

  env.cpu.set_pc(kCodeBase);
  EXPECT_EQ(env.run().result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R3], 9u);
  const auto& st = env.interp.block_cache()->stats();
  EXPECT_GE(st.evict_smc, 1u);
  EXPECT_GT(st.translated, translated_before);
}

TEST(PhysMemWatch, ByteZeroWatchIsDistinctFromUnwatchedSentinel) {
  // Regression: the packed watch word used to encode a [0, hi) range with
  // lo == 0 as plain `hi`, so watching the very start of a frame could
  // collide with the 0 "unwatched" sentinel and silently drop the SMC
  // watch. The +1 hi bias keeps every real range non-zero.
  PhysMem mem{1u << 16};
  std::vector<std::pair<PAddr, u32>> fires;
  mem.set_code_write_observer(
      [&](PAddr pa, u32 len) { fires.emplace_back(pa, len); });

  mem.watch_frame(0, 0, 1);  // watch exactly byte 0
  EXPECT_TRUE(mem.frame_watched(0));
  mem.write8(0, 0xcc);
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0].first, 0u);
  EXPECT_EQ(fires[0].second, 1u);

  // Outside the watched range: no notification.
  mem.write8(1, 0xcc);
  EXPECT_EQ(fires.size(), 1u);

  // Widening to the union keeps byte 0 covered and picks up the new tail.
  mem.watch_frame(0, 8, 16);
  mem.write8(0, 0xdd);
  EXPECT_EQ(fires.size(), 2u);
  mem.write8(15, 0xdd);
  EXPECT_EQ(fires.size(), 3u);
  mem.write8(16, 0xdd);  // hi is exclusive
  EXPECT_EQ(fires.size(), 3u);

  mem.unwatch_frame(0);
  EXPECT_FALSE(mem.frame_watched(0));
  mem.write8(0, 0xee);
  EXPECT_EQ(fires.size(), 3u);
}

TEST(BtCache, GuestStorePatchesByteZeroOfOwnTranslatedBlock) {
  // kCodeBase is page-aligned, so the block's first instruction starts at
  // byte 0 of its frame — exactly the offset the old packed-watch encoding
  // could lose. The program overwrites its own word 0 with halt (op 0x01)
  // and jumps back; if the stale translation survived, re-entry would
  // re-run the original movi and spin until the budget instead of halting.
  for (bool cache : {true, false}) {
    CpuEnv env(cache);
    Assembler a;
    a.label("start");
    a.movi(R4, 999);  // byte 0 of the frame — rewritten into halt below
    a.addpc_label(R1, "start");
    a.movi(R2, 1);       // halt encoding, word 0
    a.st32(R1, 0, R2);   // self-patch byte 0 of the executing block
    a.movi(R4, 111);
    a.jmp("start");
    env.load(a);
    auto info = env.run();
    EXPECT_EQ(info.result, StepResult::kHalt) << cache;
    EXPECT_EQ(env.cpu.regs[R4], 111u) << cache;
    if (cache) {
      EXPECT_GE(env.interp.block_cache()->stats().evict_smc, 1u);
    }
  }
}

TEST(BtCache, RandomizedCodeWriteFuzzerMatchesUncachedReference) {
  // Two interpreters run the same straight-line program under an identical
  // interleaving of budget slices and random code patches; every
  // architectural outcome must match the uncached reference exactly.
  constexpr u32 kInsns = 64;
  Assembler a;
  for (u32 i = 0; i < kInsns; ++i) {
    a.movi(static_cast<vm::Reg>(1 + (i % 8)), i);
  }
  a.halt();

  CpuEnv cached(true), plain(false);
  cached.load(a);
  plain.load(a);

  std::mt19937 rng(0xfa405u);
  u64 executed = 0;
  while (executed < kInsns) {
    const u64 slice = 1 + rng() % 7;
    auto ic = cached.run(slice);
    auto ip = plain.run(slice);
    ASSERT_EQ(ic.result, ip.result);
    ASSERT_EQ(ic.executed, ip.executed);
    executed += ic.executed;
    if (ic.result == StepResult::kHalt) break;

    // Patch the immediate of a random not-yet-executed instruction in both
    // machines (8-byte slots; +4 is the imm32 word).
    if (executed + 1 < kInsns) {
      const u64 idx = executed + 1 + rng() % (kInsns - executed - 1);
      const u32 imm = rng();
      std::vector<u8> word(4);
      std::memcpy(word.data(), &imm, 4);
      ASSERT_TRUE(
          cached.as.copy_in(kCodeBase + idx * vm::kInsnSize + 4, word, false)
              .ok());
      ASSERT_TRUE(
          plain.as.copy_in(kCodeBase + idx * vm::kInsnSize + 4, word, false)
              .ok());
    }
    for (u32 r = 0; r < vm::kNumRegs; ++r) {
      ASSERT_EQ(cached.cpu.regs[r], plain.cpu.regs[r]) << "reg " << r;
    }
  }
  for (u32 r = 0; r < vm::kNumRegs; ++r) {
    EXPECT_EQ(cached.cpu.regs[r], plain.cpu.regs[r]) << "reg " << r;
  }
  EXPECT_EQ(cached.interp.instr_count(), plain.interp.instr_count());
  EXPECT_GE(cached.interp.block_cache()->stats().evict_smc, 1u);
}

TEST(BtCache, BudgetClippedMidBlockResumesCorrectly) {
  for (bool cache : {true, false}) {
    CpuEnv env(cache);
    Assembler a;
    a.movi(R1, 1);
    a.movi(R2, 2);
    a.movi(R3, 3);
    a.movi(R4, 4);
    a.movi(R5, 5);
    a.halt();
    env.load(a);
    auto first = env.run(/*budget=*/2);
    EXPECT_EQ(first.result, StepResult::kBudget) << cache;
    EXPECT_EQ(first.executed, 2u) << cache;
    EXPECT_EQ(env.cpu.regs[R2], 2u) << cache;
    EXPECT_EQ(env.cpu.regs[R3], 0u) << cache;
    auto rest = env.run();
    EXPECT_EQ(rest.result, StepResult::kHalt) << cache;
    EXPECT_EQ(env.cpu.regs[R5], 5u) << cache;
  }
}

TEST(BtCacheOs, ProcessExitEvictsItsBlocksAndCr3RecyclesSafely) {
  os::Machine m;
  ASSERT_TRUE(m.boot().ok());
  auto spawn_exiter = [&](const std::string& name, u32 code) {
    os::ImageBuilder ib(name, os::kUserImageBase);
    ib.asm_().label("_start");
    ib.asm_().movi(R1, 0);
    ib.asm_().addi(R1, R1, 1);
    attacks::emit_exit(ib.asm_(), code);
    auto img = ib.build();
    EXPECT_TRUE(img.ok());
    std::string path = "C:/test/" + name;
    m.kernel().vfs().create(path, img.value().serialize());
    auto pid = m.kernel().spawn(path);
    EXPECT_TRUE(pid.ok());
    return pid.ok() ? pid.value() : 0;
  };

  // Same image base both times: the second spawn reuses the recycled frames
  // (and possibly the CR3) of the first — stale translations would execute
  // the wrong program.
  os::Pid p1 = spawn_exiter("first.exe", 7);
  m.run(200000);
  ASSERT_EQ(m.kernel().find(p1)->exit_code, 7u);

  os::Pid p2 = spawn_exiter("second.exe", 9);
  m.run(200000);
  ASSERT_EQ(m.kernel().find(p2)->exit_code, 9u);

  const vm::BlockCache* btc = m.kernel().interp().block_cache();
  ASSERT_NE(btc, nullptr);
  EXPECT_GE(btc->stats().evict_cr3, 1u);
  EXPECT_GE(btc->stats().translated, 2u);
}

// --- engine elision accounting -------------------------------------------

u32 spawn_benign_loop(os::Machine& m) {
  os::ImageBuilder ib("benign.exe", os::kUserImageBase);
  Assembler& a = ib.asm_();
  a.label("_start");
  a.movi(R1, 0);
  a.movi(R2, 2000);
  a.label("loop");
  a.addi(R1, R1, 1);
  a.cmp(R1, R2);
  a.bne("loop");
  attacks::emit_exit(a, 0);
  auto img = ib.build();
  EXPECT_TRUE(img.ok());
  m.kernel().vfs().create("C:/benign.exe", img.value().serialize());
  auto pid = m.kernel().spawn("C:/benign.exe");
  EXPECT_TRUE(pid.ok());
  return pid.ok() ? pid.value() : 0;
}

obs::MetricSnapshot run_benign_with_engine(bool block_cache) {
  os::MachineConfig mc;
  mc.kernel.block_cache = block_cache;
  os::Machine m(mc);
  core::Options opts;
  opts.block_cache = block_cache;
  core::FarosEngine engine(m.kernel(), opts);
  m.attach_cpu_plugin(&engine);
  m.add_monitor(&engine);
  EXPECT_TRUE(m.boot().ok());
  spawn_benign_loop(m);
  m.run(500000);
  return engine.metrics_snapshot();
}

TEST(BtCacheEngine, ElisionKeepsEngineCountersExact) {
  obs::MetricSnapshot on = run_benign_with_engine(true);
  obs::MetricSnapshot off = run_benign_with_engine(false);

  // The elided fast path must account for every skipped instruction: the
  // deterministic counters (and so the verdict stream) are identical.
  EXPECT_EQ(on[obs::Ctr::kInsnsRetired], off[obs::Ctr::kInsnsRetired]);
  EXPECT_EQ(on[obs::Ctr::kTaintedFetches], off[obs::Ctr::kTaintedFetches]);
  EXPECT_EQ(on[obs::Ctr::kPolicyEvals], off[obs::Ctr::kPolicyEvals]);

  // The loop body is pure register arithmetic: elision must actually fire
  // with the cache on and never without it.
  EXPECT_GT(on[obs::Ctr::kBtElidedBlocks], 0u);
  EXPECT_EQ(off[obs::Ctr::kBtElidedBlocks], 0u);
}

// --- detection equivalence over a corpus slice ---------------------------

std::vector<farm::JobSpec> slice_jobs() {
  std::vector<farm::JobSpec> jobs;
  auto add = [&](const std::vector<attacks::CorpusEntry>& es, size_t max_n) {
    for (size_t i = 0; i < es.size() && i < max_n; ++i) {
      farm::JobSpec spec;
      spec.name = es[i].name;
      spec.category = es[i].category;
      spec.expect_flagged = es[i].expect_flagged;
      spec.make = es[i].make;
      jobs.push_back(std::move(spec));
    }
  };
  // All injections (the attacks the cache must not hide) plus JIT/SMC
  // workloads (the payloads most hostile to the cache).
  add(attacks::injection_corpus(), ~size_t{0});
  add(attacks::jit_corpus(), 5);
  return jobs;
}

TEST(BtCacheFarm, VerdictStreamIsByteIdenticalCacheOnVsOff) {
  farm::FarmConfig on_cfg;
  on_cfg.workers = 2;

  farm::FarmConfig off_cfg;
  off_cfg.workers = 1;
  off_cfg.machine.kernel.block_cache = false;
  off_cfg.engine_opts.block_cache = false;

  auto on = farm::Farm(on_cfg).run(slice_jobs());
  auto off = farm::Farm(off_cfg).run(slice_jobs());
  ASSERT_EQ(on.results.size(), off.results.size());
  for (size_t i = 0; i < on.results.size(); ++i) {
    EXPECT_EQ(on.results[i].status, farm::JobStatus::kOk)
        << on.results[i].name;
    EXPECT_EQ(farm::job_jsonl(on.results[i]), farm::job_jsonl(off.results[i]))
        << on.results[i].name;
  }
}

}  // namespace
}  // namespace faros
