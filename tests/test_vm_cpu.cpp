// FV32 interpreter semantics: every instruction class, flags, traps,
// memory faults, stack ops, hooks and basic-block accounting.
#include <gtest/gtest.h>

#include "vm/assembler.h"
#include "vm/cpu.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros::vm {
namespace {

constexpr VAddr kCodeBase = 0x10000;
constexpr VAddr kStackTop = 0x80000;
constexpr VAddr kDataBase = 0x40000;

struct CpuEnv {
  PhysMem mem{1u << 20};
  FrameAllocator frames{0};
  AddressSpace as;
  Interpreter interp{mem};
  CpuState cpu;

  CpuEnv() : frames(mem.num_frames()) {
    frames.reserve(0);
    as = AddressSpace::create(mem, frames).value();
    EXPECT_TRUE(as.map_alloc(kStackTop - 0x2000, 0x2000,
                             kPteUser | kPteWrite)
                    .ok());
    EXPECT_TRUE(
        as.map_alloc(kDataBase, 0x1000, kPteUser | kPteWrite).ok());
    cpu.regs[SP] = kStackTop - 16;
  }

  void load(const Assembler& a, VAddr base = kCodeBase) {
    auto blob = a.assemble(base);
    ASSERT_TRUE(blob.ok()) << blob.error().message;
    ASSERT_TRUE(as.map_alloc(base, static_cast<u32>(blob.value().size()),
                             kPteUser | kPteWrite | kPteExec)
                    .ok());
    ASSERT_TRUE(as.copy_in(base, blob.value(), false).ok());
    cpu.set_pc(base);
  }

  StepInfo run(u64 budget = 100000) { return interp.run(cpu, as, budget); }
};

TEST(CpuAlu, MoviMovAndArithmetic) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 20);
  a.movi(R2, 22);
  a.add(R3, R1, R2);
  a.sub(R4, R3, R1);
  a.mul(R5, R1, R2);
  a.mov(R6, R5);
  a.halt();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R3], 42u);
  EXPECT_EQ(env.cpu.regs[R4], 22u);
  EXPECT_EQ(env.cpu.regs[R5], 440u);
  EXPECT_EQ(env.cpu.regs[R6], 440u);
}

TEST(CpuAlu, LogicalAndShifts) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 0xf0f0);
  a.movi(R2, 0x0ff0);
  a.and_(R3, R1, R2);
  a.or_(R4, R1, R2);
  a.xor_(R5, R1, R2);
  a.movi(R6, 2);
  a.shl(R7, R1, R6);
  a.shr(R8, R1, R6);
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(env.cpu.regs[R3], 0x00f0u);
  EXPECT_EQ(env.cpu.regs[R4], 0xfff0u);
  EXPECT_EQ(env.cpu.regs[R5], 0xff00u);
  EXPECT_EQ(env.cpu.regs[R7], 0xf0f0u << 2);
  EXPECT_EQ(env.cpu.regs[R8], 0xf0f0u >> 2);
}

TEST(CpuAlu, ImmediateForms) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 100);
  a.addi(R2, R1, -1);
  a.subi(R3, R1, 30);
  a.muli(R4, R1, 3);
  a.andi(R5, R1, 0x6);
  a.ori(R6, R1, 0x3);
  a.xori(R7, R1, 0xff);
  a.shli(R8, R1, 4);
  a.shri(R9, R1, 2);
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(env.cpu.regs[R2], 99u);
  EXPECT_EQ(env.cpu.regs[R3], 70u);
  EXPECT_EQ(env.cpu.regs[R4], 300u);
  EXPECT_EQ(env.cpu.regs[R5], 100u & 0x6);
  EXPECT_EQ(env.cpu.regs[R6], 100u | 0x3);
  EXPECT_EQ(env.cpu.regs[R7], 100u ^ 0xffu);
  EXPECT_EQ(env.cpu.regs[R8], 1600u);
  EXPECT_EQ(env.cpu.regs[R9], 25u);
}

TEST(CpuAlu, DivideAndDivideByZeroTrap) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 84);
  a.movi(R2, 2);
  a.divu(R3, R1, R2);
  a.movi(R4, 0);
  a.divu(R5, R1, R4);  // traps
  a.halt();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(env.cpu.regs[R3], 42u);
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.trap, TrapKind::kDivZero);
}

TEST(CpuMem, LoadStoreWidths) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, kDataBase);
  a.movi(R2, 0x11223344);
  a.st32(R1, 0, R2);
  a.ld32(R3, R1, 0);
  a.ld16(R4, R1, 0);
  a.ld8(R5, R1, 0);
  a.ld8(R6, R1, 3);
  a.movi(R7, 0xabcd);
  a.st16(R1, 8, R7);
  a.ld16(R8, R1, 8);
  a.movi(R9, 0x7f);
  a.st8(R1, 12, R9);
  a.ld8(R10, R1, 12);
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(env.cpu.regs[R3], 0x11223344u);
  EXPECT_EQ(env.cpu.regs[R4], 0x3344u);  // little endian
  EXPECT_EQ(env.cpu.regs[R5], 0x44u);
  EXPECT_EQ(env.cpu.regs[R6], 0x11u);
  EXPECT_EQ(env.cpu.regs[R8], 0xabcdu);
  EXPECT_EQ(env.cpu.regs[R10], 0x7fu);
}

TEST(CpuMem, UnalignedAccessCrossingPagesWorks) {
  CpuEnv env;
  Assembler a;
  // kDataBase..+0x1000 is one page; map the next page too and write across.
  a.movi(R1, kDataBase + 0xffe);
  a.movi(R2, 0xcafebabe);
  a.st32(R1, 0, R2);
  a.ld32(R3, R1, 0);
  a.halt();
  ASSERT_TRUE(
      env.as.map_alloc(kDataBase + 0x1000, 0x1000, kPteUser | kPteWrite)
          .ok());
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R3], 0xcafebabeu);
}

TEST(CpuMem, PushPopRoundTrip) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 111);
  a.movi(R2, 222);
  a.push(R1);
  a.push(R2);
  a.pop(R3);
  a.pop(R4);
  a.halt();
  env.load(a);
  u32 sp0 = env.cpu.regs[SP];
  env.run();
  EXPECT_EQ(env.cpu.regs[R3], 222u);
  EXPECT_EQ(env.cpu.regs[R4], 111u);
  EXPECT_EQ(env.cpu.regs[SP], sp0);
}

TEST(CpuBranch, ConditionalBranchesSignedAndUnsigned) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, static_cast<u32>(-1));  // 0xffffffff: signed -1, unsigned max
  a.movi(R2, 1);
  a.cmp(R1, R2);
  a.blt("signed_lt");  // -1 < 1 signed: taken
  a.movi(R10, 0xbad);
  a.halt();
  a.label("signed_lt");
  a.movi(R3, 1);
  a.cmp(R1, R2);
  a.bltu("unsigned_lt");  // 0xffffffff < 1 unsigned: NOT taken
  a.movi(R4, 1);
  a.cmp(R2, R2);
  a.beq("equal");
  a.movi(R10, 0xbad2);
  a.halt();
  a.label("unsigned_lt");
  a.movi(R10, 0xbad3);
  a.halt();
  a.label("equal");
  a.movi(R5, 1);
  a.cmp(R1, R2);
  a.bne("noteq");
  a.halt();
  a.label("noteq");
  a.movi(R6, 1);
  a.cmpi(R2, 5);
  a.bge("done");  // 1 >= 5 false: falls through
  a.movi(R7, 1);
  a.label("done");
  a.halt();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R10], 0u);
  EXPECT_EQ(env.cpu.regs[R3], 1u);
  EXPECT_EQ(env.cpu.regs[R4], 1u);
  EXPECT_EQ(env.cpu.regs[R5], 1u);
  EXPECT_EQ(env.cpu.regs[R6], 1u);
  EXPECT_EQ(env.cpu.regs[R7], 1u);
}

TEST(CpuBranch, LoopAndJump) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 0);
  a.label("loop");
  a.cmpi(R1, 10);
  a.bgeu("end");
  a.addi(R1, R1, 1);
  a.jmp("loop");
  a.label("end");
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(env.cpu.regs[R1], 10u);
}

TEST(CpuBranch, CallRetAndCallr) {
  CpuEnv env;
  Assembler a;
  a.call("fn");
  a.mov(R5, R0);
  a.addpc_label(R6, "fn2");
  a.callr(R6);
  a.mov(R7, R0);
  a.halt();
  a.label("fn");
  a.movi(R0, 41);
  a.ret();
  a.label("fn2");
  a.movi(R0, 43);
  a.ret();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R5], 41u);
  EXPECT_EQ(env.cpu.regs[R7], 43u);
}

TEST(CpuBranch, JrJumpsToAbsoluteAddress) {
  CpuEnv env;
  Assembler a;
  a.movi_label(R1, "target");
  a.jr(R1);
  a.movi(R2, 0xbad);
  a.halt();
  a.label("target");
  a.movi(R3, 7);
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(env.cpu.regs[R2], 0u);
  EXPECT_EQ(env.cpu.regs[R3], 7u);
}

TEST(CpuTrap, BadOpcode) {
  CpuEnv env;
  Assembler a;
  a.data(Bytes{0xee, 0, 0, 0, 0, 0, 0, 0});
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.trap, TrapKind::kBadOpcode);
}

TEST(CpuTrap, FetchFromUnmappedMemory) {
  CpuEnv env;
  Assembler a;
  a.halt();
  env.load(a);
  env.cpu.set_pc(0xdead000);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.trap, TrapKind::kMemFault);
  EXPECT_EQ(info.fault.kind, FaultKind::kNotMapped);
}

TEST(CpuTrap, MisalignedPc) {
  CpuEnv env;
  Assembler a;
  a.halt();
  env.load(a);
  env.cpu.set_pc(kCodeBase + 3);
  auto info = env.run();
  EXPECT_EQ(info.trap, TrapKind::kPcMisaligned);
}

TEST(CpuTrap, StoreToUnmappedAddressHasNoPartialEffect) {
  CpuEnv env;
  Assembler a;
  // Store crossing from a mapped page into unmapped space must not write
  // the mapped bytes either.
  a.movi(R1, kDataBase + 0xffe);
  a.movi(R2, 0xffffffff);
  a.st32(R1, 0, R2);
  a.halt();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.trap, TrapKind::kMemFault);
  auto pa = env.as.translate(kDataBase + 0xffe, AccessType::kRead, false);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(env.mem.read8(*pa), 0u);  // untouched
}

TEST(CpuTrap, WriteProtectionEnforcedForUserMode) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 0x50000);
  a.movi(R2, 1);
  a.st8(R1, 0, R2);
  a.halt();
  ASSERT_TRUE(env.as.map_alloc(0x50000, 0x1000, kPteUser).ok());  // RO
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.fault.kind, FaultKind::kProtWrite);
}

TEST(CpuTrap, ExecProtectionEnforced) {
  CpuEnv env;
  Assembler a;
  a.halt();
  auto blob = a.assemble(0x60000);
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(env.as.map_alloc(0x60000, 0x1000, kPteUser | kPteWrite).ok());
  ASSERT_TRUE(env.as.copy_in(0x60000, blob.value(), false).ok());
  env.cpu.set_pc(0x60000);  // mapped but not executable
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.fault.kind, FaultKind::kProtExec);
}

TEST(CpuControl, SyscallStopsAndAdvancesPc) {
  CpuEnv env;
  Assembler a;
  a.movi(R0, 99);
  a.syscall_();
  a.movi(R1, 5);
  a.halt();
  env.load(a);
  auto info = env.run();
  EXPECT_EQ(info.result, StepResult::kSyscall);
  EXPECT_EQ(env.cpu.pc(), kCodeBase + 2 * kInsnSize);
  // Resuming continues after the syscall.
  info = env.run();
  EXPECT_EQ(info.result, StepResult::kHalt);
  EXPECT_EQ(env.cpu.regs[R1], 5u);
}

TEST(CpuControl, BudgetExhaustionReturnsAndResumes) {
  CpuEnv env;
  Assembler a;
  a.movi(R1, 0);
  a.label("loop");
  a.addi(R1, R1, 1);
  a.jmp("loop");
  env.load(a);
  auto info = env.interp.run(env.cpu, env.as, 100);
  EXPECT_EQ(info.result, StepResult::kBudget);
  EXPECT_EQ(info.executed, 100u);
  EXPECT_EQ(env.interp.instr_count(), 100u);
  info = env.interp.run(env.cpu, env.as, 50);
  EXPECT_EQ(info.executed, 50u);
  EXPECT_EQ(env.interp.instr_count(), 150u);
}

TEST(CpuControl, AddPcComputesNextPcRelative) {
  CpuEnv env;
  Assembler a;
  a.addpc_label(R1, "here");
  a.label("here");
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(env.cpu.regs[R1], kCodeBase + kInsnSize);
}

struct CountingHooks : ExecHooks {
  u64 insns = 0;
  u64 blocks = 0;
  u64 mem_accesses = 0;
  void on_block_begin(PAddr, VAddr) override { ++blocks; }
  void on_insn_retired(const InsnEvent& ev, const AddressSpace&) override {
    ++insns;
    if (ev.mem) ++mem_accesses;
  }
};

TEST(CpuHooks, BlockAndInsnCallbacks) {
  CpuEnv env;
  CountingHooks hooks;
  env.interp.set_hooks(&hooks);
  Assembler a;
  // Block 1: movi, movi, jmp. Block 2: st32, ld32, halt.
  a.movi(R1, kDataBase);
  a.movi(R2, 3);
  a.jmp("next");
  a.label("next");
  a.st32(R1, 0, R2);
  a.ld32(R3, R1, 0);
  a.halt();
  env.load(a);
  env.run();
  EXPECT_EQ(hooks.insns, 6u);
  EXPECT_EQ(hooks.blocks, 2u);
  EXPECT_EQ(hooks.mem_accesses, 2u);
  EXPECT_EQ(env.interp.block_count(), 2u);
}

TEST(CpuHooks, InsnEventCarriesOperandValuesAndMemInfo) {
  CpuEnv env;
  struct Capture : ExecHooks {
    std::vector<InsnEvent> events;
    void on_insn_retired(const InsnEvent& ev, const AddressSpace&) override {
      events.push_back(ev);
    }
  } hooks;
  env.interp.set_hooks(&hooks);
  Assembler a;
  a.movi(R1, kDataBase);
  a.movi(R2, 0xaa);
  a.st8(R1, 4, R2);
  a.halt();
  env.load(a);
  env.run();
  ASSERT_EQ(hooks.events.size(), 4u);
  const InsnEvent& st = hooks.events[2];
  EXPECT_EQ(st.insn.op, Opcode::kSt8);
  EXPECT_EQ(st.rs1_val, kDataBase);
  EXPECT_EQ(st.rs2_val, 0xaau);
  ASSERT_TRUE(st.mem.has_value());
  EXPECT_EQ(st.mem->va, kDataBase + 4);
  EXPECT_TRUE(st.mem->is_write);
  EXPECT_EQ(st.mem->size, 1u);
  EXPECT_EQ(st.pc, kCodeBase + 2 * kInsnSize);
}


TEST(CpuTlb, HitsDominateTightLoops) {
  // With the block cache the fetch translation runs once per block entry
  // (~1 per loop iteration); per-instruction mode fetch-translates every
  // instruction (~3 per iteration). Either way hits dominate misses.
  for (bool cache : {true, false}) {
    CpuEnv env;
    env.interp.set_block_cache_enabled(cache);
    Assembler a;
    a.movi(R1, 0);
    a.label("loop");
    a.addi(R1, R1, 1);
    a.cmpi(R1, 1000);
    a.bltu("loop");
    a.halt();
    env.load(a);
    env.run();
    EXPECT_GT(env.interp.tlb_hits(), cache ? 900u : 2900u) << cache;
    EXPECT_LT(env.interp.tlb_misses(), 8u) << cache;  // all on one page
  }
}

TEST(CpuTlb, ProtectionChangesBetweenQuantaAreHonoured) {
  // A page readable in quantum 1 becomes read-only before quantum 2: the
  // per-run TLB flush must pick up the new protection.
  CpuEnv env;
  Assembler a;
  a.movi(R1, kDataBase);
  a.movi(R2, 1);
  a.st8(R1, 0, R2);   // quantum 1: write succeeds
  a.syscall_();       // quantum boundary (returns to caller)
  a.st8(R1, 1, R2);   // quantum 2: page is now read-only -> trap
  a.halt();
  env.load(a);
  auto info = env.run();
  ASSERT_EQ(info.result, StepResult::kSyscall);
  ASSERT_TRUE(env.as.protect_range(kDataBase, 0x1000, kPteUser).ok());
  info = env.run();
  EXPECT_EQ(info.result, StepResult::kTrap);
  EXPECT_EQ(info.fault.kind, FaultKind::kProtWrite);
}

TEST(CpuTlb, DistinctAddressSpacesDoNotAlias) {
  // Two spaces map the same VA to different frames; interleaved execution
  // must read each space's own data (the TLB keys on CR3).
  CpuEnv env;
  AddressSpace other = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(other.map_alloc(kCodeBase, 0x1000,
                              kPteUser | kPteWrite | kPteExec)
                  .ok());
  ASSERT_TRUE(other.map_alloc(kDataBase, 0x1000, kPteUser | kPteWrite).ok());
  ASSERT_TRUE(
      other.map_alloc(kStackTop - 0x2000, 0x2000, kPteUser | kPteWrite).ok());

  Assembler a;
  a.movi(R1, kDataBase);
  a.ld32(R2, R1, 0);
  a.halt();
  auto blob = a.assemble(kCodeBase);
  ASSERT_TRUE(blob.ok());
  env.load(a);  // maps + copies into env.as
  ASSERT_TRUE(other.copy_in(kCodeBase, blob.value(), false).ok());

  // Different data in each space.
  Bytes d1{0x11, 0, 0, 0};
  Bytes d2{0x22, 0, 0, 0};
  ASSERT_TRUE(env.as.copy_in(kDataBase, d1, false).ok());
  ASSERT_TRUE(other.copy_in(kDataBase, d2, false).ok());

  CpuState cpu2;
  cpu2.regs[SP] = kStackTop - 16;
  cpu2.set_pc(kCodeBase);
  env.interp.run(env.cpu, env.as, 100);
  env.interp.run(cpu2, other, 100);
  EXPECT_EQ(env.cpu.regs[R2], 0x11u);
  EXPECT_EQ(cpu2.regs[R2], 0x22u);
}

}  // namespace
}  // namespace faros::vm
