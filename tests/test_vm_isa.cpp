// FV32 ISA: encoding, decoding, classification and disassembly.
#include <gtest/gtest.h>

#include "vm/isa.h"

namespace faros::vm {
namespace {

const Opcode kAllOpcodes[] = {
    Opcode::kNop,   Opcode::kHalt, Opcode::kMovi, Opcode::kMov,
    Opcode::kAddPc, Opcode::kLd8,  Opcode::kLd16, Opcode::kLd32,
    Opcode::kSt8,   Opcode::kSt16, Opcode::kSt32, Opcode::kAdd,
    Opcode::kSub,   Opcode::kMul,  Opcode::kDivu, Opcode::kAnd,
    Opcode::kOr,    Opcode::kXor,  Opcode::kShl,  Opcode::kShr,
    Opcode::kAddi,  Opcode::kSubi, Opcode::kMuli, Opcode::kAndi,
    Opcode::kOri,   Opcode::kXori, Opcode::kShli, Opcode::kShri,
    Opcode::kCmp,   Opcode::kCmpi, Opcode::kJmp,  Opcode::kJr,
    Opcode::kBeq,   Opcode::kBne,  Opcode::kBlt,  Opcode::kBge,
    Opcode::kBltu,  Opcode::kBgeu, Opcode::kCall, Opcode::kCallr,
    Opcode::kRet,   Opcode::kPush, Opcode::kPop,  Opcode::kSyscall,
    Opcode::kBrk,
};

class IsaRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(IsaRoundTrip, EncodeDecodeIsIdentity) {
  Instruction in;
  in.op = GetParam();
  in.rd = 3;
  in.rs1 = 7;
  in.rs2 = 12;
  in.imm = 0xdeadbeef;
  Bytes bytes;
  encode(in, bytes);
  ASSERT_EQ(bytes.size(), kInsnSize);
  auto out = decode(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST_P(IsaRoundTrip, OpcodeIsValidAndNamed) {
  EXPECT_TRUE(opcode_valid(static_cast<u8>(GetParam())));
  EXPECT_STRNE(opcode_name(GetParam()), "???");
}

TEST_P(IsaRoundTrip, DisassemblyIsNonEmptyAndStartsWithMnemonic) {
  Instruction in;
  in.op = GetParam();
  in.rd = 1;
  in.rs1 = 2;
  in.rs2 = 3;
  in.imm = 16;
  std::string text = disassemble(in);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.rfind(opcode_name(GetParam()), 0), 0u) << text;
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, IsaRoundTrip, ::testing::ValuesIn(kAllOpcodes),
    [](const ::testing::TestParamInfo<Opcode>& info) {
      return std::string(opcode_name(info.param));
    });

TEST(IsaDecode, RejectsInvalidOpcodes) {
  for (u32 op = 0; op < 256; ++op) {
    Bytes bytes{static_cast<u8>(op), 0, 0, 0, 0, 0, 0, 0};
    auto decoded = decode(bytes);
    EXPECT_EQ(decoded.has_value(), opcode_valid(static_cast<u8>(op)))
        << "opcode " << op;
  }
}

TEST(IsaDecode, RejectsShortSpans) {
  Bytes bytes{0, 0, 0, 0, 0, 0, 0};  // 7 bytes
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(IsaDecode, RejectsOutOfRangeRegisters) {
  Bytes bytes{static_cast<u8>(Opcode::kMov), 16, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bytes).has_value());
  bytes[1] = 0;
  bytes[2] = 200;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(IsaDecode, ImmediateIsLittleEndian) {
  Bytes bytes{static_cast<u8>(Opcode::kMovi), 0, 0, 0, 0x78, 0x56, 0x34,
              0x12};
  auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, 0x12345678u);
}

TEST(IsaClassify, LoadsAndStores) {
  EXPECT_TRUE(is_load(Opcode::kLd8));
  EXPECT_TRUE(is_load(Opcode::kLd16));
  EXPECT_TRUE(is_load(Opcode::kLd32));
  EXPECT_TRUE(is_load(Opcode::kPop));
  EXPECT_FALSE(is_load(Opcode::kSt8));
  EXPECT_TRUE(is_store(Opcode::kSt8));
  EXPECT_TRUE(is_store(Opcode::kSt16));
  EXPECT_TRUE(is_store(Opcode::kSt32));
  EXPECT_TRUE(is_store(Opcode::kPush));
  EXPECT_FALSE(is_store(Opcode::kLd32));
}

TEST(IsaClassify, MemAccessSizes) {
  EXPECT_EQ(mem_access_size(Opcode::kLd8), 1u);
  EXPECT_EQ(mem_access_size(Opcode::kLd16), 2u);
  EXPECT_EQ(mem_access_size(Opcode::kLd32), 4u);
  EXPECT_EQ(mem_access_size(Opcode::kSt8), 1u);
  EXPECT_EQ(mem_access_size(Opcode::kSt16), 2u);
  EXPECT_EQ(mem_access_size(Opcode::kSt32), 4u);
  EXPECT_EQ(mem_access_size(Opcode::kPush), 4u);
  EXPECT_EQ(mem_access_size(Opcode::kPop), 4u);
  EXPECT_EQ(mem_access_size(Opcode::kAdd), 0u);
}

TEST(IsaClassify, BlockEnders) {
  EXPECT_TRUE(ends_block(Opcode::kJmp));
  EXPECT_TRUE(ends_block(Opcode::kBeq));
  EXPECT_TRUE(ends_block(Opcode::kCall));
  EXPECT_TRUE(ends_block(Opcode::kRet));
  EXPECT_TRUE(ends_block(Opcode::kSyscall));
  EXPECT_TRUE(ends_block(Opcode::kHalt));
  EXPECT_FALSE(ends_block(Opcode::kAdd));
  EXPECT_FALSE(ends_block(Opcode::kLd32));
  EXPECT_FALSE(ends_block(Opcode::kCmp));
}

TEST(IsaRegs, Names) {
  EXPECT_STREQ(reg_name(0), "r0");
  EXPECT_STREQ(reg_name(12), "r12");
  EXPECT_STREQ(reg_name(SP), "sp");
  EXPECT_STREQ(reg_name(LR), "lr");
  EXPECT_STREQ(reg_name(PC), "pc");
  EXPECT_STREQ(reg_name(99), "r?");
}

TEST(IsaDisasm, MemoryOperandsRenderWithOffset) {
  Instruction ld{Opcode::kLd32, R1, R2, 0, static_cast<u32>(-8)};
  EXPECT_EQ(disassemble(ld), "ld32 r1, [r2-8]");
  Instruction st{Opcode::kSt8, 0, R3, R4, 16};
  EXPECT_EQ(disassemble(st), "st8 [r3+16], r4");
}

}  // namespace
}  // namespace faros::vm
