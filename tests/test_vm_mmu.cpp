// MMU: page tables, permissions, sharing, bulk copies, frame allocator.
#include <gtest/gtest.h>

#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros::vm {
namespace {

struct MmuEnv {
  PhysMem mem{8u << 20};
  FrameAllocator frames{0};
  MmuEnv() : frames(mem.num_frames()) { frames.reserve(0); }
};

TEST(FrameAllocator, AllocatesDistinctFramesDeterministically) {
  MmuEnv env;
  auto a = env.frames.alloc();
  auto b = env.frames.alloc();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.value() % kPageSize, 0u);
  // Frame 0 was reserved.
  EXPECT_NE(a.value(), 0u);
  // Freeing and re-allocating returns the lowest free frame again.
  env.frames.free(a.value());
  auto c = env.frames.alloc();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), a.value());
}

TEST(FrameAllocator, ExhaustionReportsError) {
  PhysMem mem(4 * kPageSize);
  FrameAllocator frames(mem.num_frames());
  std::vector<PAddr> got;
  ASSERT_TRUE(frames.alloc_many(4, got).ok());
  EXPECT_FALSE(frames.alloc().ok());
  frames.free(got[2]);
  EXPECT_TRUE(frames.alloc().ok());
}

TEST(FrameAllocator, FreeObserverFires) {
  MmuEnv env;
  std::vector<PAddr> freed;
  env.frames.set_free_observer([&](PAddr f) { freed.push_back(f); });
  auto a = env.frames.alloc();
  ASSERT_TRUE(a.ok());
  env.frames.free(a.value());
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], a.value());
}

TEST(AddressSpace, MapTranslateUnmap) {
  MmuEnv env;
  auto as = AddressSpace::create(env.mem, env.frames);
  ASSERT_TRUE(as.ok());
  AddressSpace space = as.value();
  ASSERT_TRUE(space.map_alloc(0x40000000, kPageSize, kPteUser | kPteWrite)
                  .ok());
  auto pa = space.translate(0x40000123, AccessType::kRead, true);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa % kPageSize, 0x123u);
  EXPECT_TRUE(space.is_mapped(0x40000000));
  EXPECT_FALSE(space.is_mapped(0x40001000));
  ASSERT_TRUE(space.unmap_page(0x40000000, true).ok());
  EXPECT_FALSE(space.is_mapped(0x40000000));
}

TEST(AddressSpace, Cr3IsUniquePerSpace) {
  MmuEnv env;
  auto a = AddressSpace::create(env.mem, env.frames);
  auto b = AddressSpace::create(env.mem, env.frames);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().cr3(), b.value().cr3());
}

TEST(AddressSpace, UserProtectionChecks) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(space.map_alloc(0x1000, kPageSize, kPteUser).ok());  // R only
  Fault fault;
  EXPECT_TRUE(space.translate(0x1000, AccessType::kRead, true).has_value());
  EXPECT_FALSE(space.translate(0x1000, AccessType::kWrite, true, &fault)
                   .has_value());
  EXPECT_EQ(fault.kind, FaultKind::kProtWrite);
  EXPECT_FALSE(space.translate(0x1000, AccessType::kExec, true, &fault)
                   .has_value());
  EXPECT_EQ(fault.kind, FaultKind::kProtExec);
  // Supervisor-only page.
  ASSERT_TRUE(space.map_alloc(0x3000, kPageSize, 0).ok());
  EXPECT_FALSE(space.translate(0x3000, AccessType::kRead, true, &fault)
                   .has_value());
  EXPECT_EQ(fault.kind, FaultKind::kNotUser);
  // Kernel-mode access bypasses all protection bits.
  EXPECT_TRUE(space.translate(0x3000, AccessType::kWrite, false).has_value());
  EXPECT_TRUE(space.translate(0x1000, AccessType::kWrite, false).has_value());
}

TEST(AddressSpace, ProtectRangeRewritesFlags) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(
      space.map_alloc(0x1000, 2 * kPageSize, kPteUser | kPteWrite).ok());
  ASSERT_TRUE(space.protect_range(0x1000, 2 * kPageSize, kPteUser).ok());
  Fault fault;
  EXPECT_FALSE(space.translate(0x1800, AccessType::kWrite, true, &fault)
                   .has_value());
  EXPECT_EQ(space.page_flags(0x1000) & kPteWrite, 0u);
}

TEST(AddressSpace, CopyInOutRoundTrip) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(
      space.map_alloc(0x7000, 3 * kPageSize, kPteUser | kPteWrite).ok());
  Bytes data(5000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  ASSERT_TRUE(space.copy_in(0x7123, data, true).ok());  // crosses pages
  Bytes out(data.size());
  ASSERT_TRUE(space.copy_out(0x7123, out, true).ok());
  EXPECT_EQ(out, data);
}

TEST(AddressSpace, CopyFaultsAreReported) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(space.map_alloc(0x7000, kPageSize, kPteUser | kPteWrite).ok());
  Bytes data(kPageSize + 1, 0xaa);
  EXPECT_FALSE(space.copy_in(0x7000, data, true).ok());  // runs off the end
  Bytes out(16);
  EXPECT_FALSE(space.copy_out(0x9000, out, true).ok());  // unmapped
}

TEST(AddressSpace, ReadCstr) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(space.map_alloc(0x7000, kPageSize, kPteUser | kPteWrite).ok());
  Bytes s{'h', 'i', 0};
  ASSERT_TRUE(space.copy_in(0x7000, s, true).ok());
  auto str = space.read_cstr(0x7000, 16, true);
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value(), "hi");
  // Unterminated within bound fails.
  Bytes long_s(32, 'x');
  ASSERT_TRUE(space.copy_in(0x7100, long_s, true).ok());
  EXPECT_FALSE(space.read_cstr(0x7100, 8, true).ok());
}

TEST(AddressSpace, SharedKernelDirectoryRangeSeesLaterMappings) {
  MmuEnv env;
  AddressSpace kernel = AddressSpace::create(env.mem, env.frames).value();
  // Pre-create the kernel-half table, as the OS boot does.
  ASSERT_TRUE(kernel.ensure_table(kKernelBase).ok());
  AddressSpace proc = AddressSpace::create(env.mem, env.frames).value();
  proc.share_directory_range(kernel, kKernelBase, 0xffffffffu);
  // A mapping added to the kernel space *after* sharing is visible in the
  // process space because the second-level table is shared.
  ASSERT_TRUE(kernel.map_alloc(kKernelBase + 0x5000, kPageSize,
                               kPteUser)
                  .ok());
  EXPECT_TRUE(proc.is_mapped(kKernelBase + 0x5000));
}

TEST(AddressSpace, DestroyFreesUserFramesButNotSharedKernel) {
  MmuEnv env;
  AddressSpace kernel = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(kernel.ensure_table(kKernelBase).ok());
  ASSERT_TRUE(kernel.map_alloc(kKernelBase, kPageSize, 0).ok());

  u32 before = env.frames.free_frames();
  AddressSpace proc = AddressSpace::create(env.mem, env.frames).value();
  proc.share_directory_range(kernel, kKernelBase, 0xffffffffu);
  ASSERT_TRUE(proc.map_alloc(0x1000, 4 * kPageSize, kPteUser | kPteWrite)
                  .ok());
  proc.destroy(true);
  EXPECT_EQ(env.frames.free_frames(), before);
  // Kernel mapping still intact.
  EXPECT_TRUE(kernel.is_mapped(kKernelBase));
}

TEST(AddressSpace, UnmapRangePartialAndIdempotentMapAlloc) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(
      space.map_alloc(0x10000, 4 * kPageSize, kPteUser | kPteWrite).ok());
  // map_alloc over an already-mapped range is idempotent.
  ASSERT_TRUE(
      space.map_alloc(0x10000, 4 * kPageSize, kPteUser | kPteWrite).ok());
  ASSERT_TRUE(space.unmap_range(0x11000, 2 * kPageSize, true).ok());
  EXPECT_TRUE(space.is_mapped(0x10000));
  EXPECT_FALSE(space.is_mapped(0x11000));
  EXPECT_FALSE(space.is_mapped(0x12000));
  EXPECT_TRUE(space.is_mapped(0x13000));
}

TEST(AddressSpace, TranslateDistinguishesOffsetsWithinPage) {
  MmuEnv env;
  AddressSpace space = AddressSpace::create(env.mem, env.frames).value();
  ASSERT_TRUE(space.map_alloc(0x5000, kPageSize, kPteUser).ok());
  auto a = space.translate(0x5000, AccessType::kRead, false);
  auto b = space.translate(0x5fff, AccessType::kRead, false);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*b - *a, 0xfffu);
}

}  // namespace
}  // namespace faros::vm
