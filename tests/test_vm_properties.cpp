// Property/differential tests for the VM:
//  * random straight-line ALU programs vs host-computed reference values;
//  * random MMU map/protect/unmap sequences vs a dictionary reference;
//  * assembler/disassembler round-trip stability.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "vm/assembler.h"
#include "vm/cpu.h"
#include "vm/mmu.h"
#include "vm/phys_mem.h"

namespace faros::vm {
namespace {

TEST(VmProperty, RandomAluProgramsMatchHostArithmetic) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    PhysMem mem(1u << 20);
    FrameAllocator frames(mem.num_frames());
    frames.reserve(0);
    AddressSpace as = AddressSpace::create(mem, frames).value();
    Interpreter interp(mem);
    CpuState cpu;

    u32 ref[8] = {};  // reference values of r1..r7 (index 1..7)
    Assembler a;
    // Seed registers with random constants.
    for (u8 r = 1; r <= 7; ++r) {
      u32 v = rng.next_u32();
      a.movi(static_cast<Reg>(r), v);
      ref[r] = v;
    }
    // Random ALU ops.
    for (int i = 0; i < 60; ++i) {
      u8 rd = static_cast<u8>(1 + rng.below(7));
      u8 rs1 = static_cast<u8>(1 + rng.below(7));
      u8 rs2 = static_cast<u8>(1 + rng.below(7));
      u32 imm = rng.next_u32();
      switch (rng.below(12)) {
        case 0:
          a.add(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] + ref[rs2];
          break;
        case 1:
          a.sub(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] - ref[rs2];
          break;
        case 2:
          a.mul(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] * ref[rs2];
          break;
        case 3:
          a.and_(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                 static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] & ref[rs2];
          break;
        case 4:
          a.or_(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] | ref[rs2];
          break;
        case 5:
          a.xor_(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                 static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] ^ ref[rs2];
          break;
        case 6:
          a.shl(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] << (ref[rs2] & 31);
          break;
        case 7:
          a.shr(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                static_cast<Reg>(rs2));
          ref[rd] = ref[rs1] >> (ref[rs2] & 31);
          break;
        case 8:
          a.addi(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                 static_cast<i32>(imm));
          ref[rd] = ref[rs1] + imm;
          break;
        case 9:
          a.muli(static_cast<Reg>(rd), static_cast<Reg>(rs1),
                 static_cast<i32>(imm));
          ref[rd] = ref[rs1] * imm;
          break;
        case 10:
          a.xori(static_cast<Reg>(rd), static_cast<Reg>(rs1), imm);
          ref[rd] = ref[rs1] ^ imm;
          break;
        default:
          a.shri(static_cast<Reg>(rd), static_cast<Reg>(rs1), imm);
          ref[rd] = ref[rs1] >> (imm & 31);
          break;
      }
    }
    a.halt();

    auto blob = a.assemble(0x1000);
    ASSERT_TRUE(blob.ok());
    ASSERT_TRUE(as.map_alloc(0x1000,
                             static_cast<u32>(blob.value().size()),
                             kPteUser | kPteWrite | kPteExec)
                    .ok());
    ASSERT_TRUE(as.copy_in(0x1000, blob.value(), false).ok());
    cpu.set_pc(0x1000);
    auto info = interp.run(cpu, as, 1000);
    ASSERT_EQ(info.result, StepResult::kHalt);
    for (u8 r = 1; r <= 7; ++r) {
      ASSERT_EQ(cpu.regs[r], ref[r]) << "iter " << iter << " r" << int(r);
    }
  }
}

TEST(VmProperty, RandomMmuOperationsMatchDictionaryReference) {
  Rng rng(31337);
  for (int iter = 0; iter < 10; ++iter) {
    PhysMem mem(4u << 20);
    FrameAllocator frames(mem.num_frames());
    frames.reserve(0);
    AddressSpace as = AddressSpace::create(mem, frames).value();

    std::map<VAddr, u32> ref;  // page -> flags
    for (int op = 0; op < 200; ++op) {
      VAddr page = static_cast<VAddr>(rng.below(64)) * kPageSize + 0x100000;
      switch (rng.below(3)) {
        case 0: {  // map
          u32 flags = kPteUser | (rng.chance(0.5) ? u32{kPteWrite} : 0u) |
                      (rng.chance(0.3) ? u32{kPteExec} : 0u);
          if (ref.count(page)) break;  // map_alloc is idempotent; skip
          ASSERT_TRUE(as.map_alloc(page, kPageSize, flags).ok());
          ref[page] = flags;
          break;
        }
        case 1: {  // unmap
          if (!ref.count(page)) break;
          ASSERT_TRUE(as.unmap_page(page, true).ok());
          ref.erase(page);
          break;
        }
        case 2: {  // protect
          if (!ref.count(page)) break;
          u32 flags = kPteUser | (rng.chance(0.5) ? u32{kPteWrite} : 0u);
          ASSERT_TRUE(as.protect_range(page, kPageSize, flags).ok());
          ref[page] = flags;
          break;
        }
      }
    }
    // Verify every page agrees with the reference.
    for (VAddr page = 0x100000; page < 0x100000 + 64 * kPageSize;
         page += kPageSize) {
      auto it = ref.find(page);
      if (it == ref.end()) {
        EXPECT_FALSE(as.is_mapped(page));
        continue;
      }
      ASSERT_TRUE(as.is_mapped(page));
      EXPECT_EQ(as.page_flags(page) & (kPteWrite | kPteExec | kPteUser),
                it->second & (kPteWrite | kPteExec | kPteUser));
      // Write access agrees with the W bit.
      bool can_write =
          as.translate(page, AccessType::kWrite, true).has_value();
      EXPECT_EQ(can_write, (it->second & kPteWrite) != 0);
    }
    // No frame leaks: freeing everything restores the free count to
    // (total - reserved - directory/tables).
    u32 mapped = static_cast<u32>(ref.size());
    EXPECT_LE(frames.total_frames() - frames.free_frames(),
              mapped + 1 /*dir*/ + 64 /*tables upper bound*/);
  }
}

TEST(VmProperty, DisassembleNeverCrashesOnRandomBytes) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    Bytes raw = rng.bytes(kInsnSize);
    auto insn = decode(raw);
    if (insn) {
      std::string text = disassemble(*insn);
      EXPECT_FALSE(text.empty());
    }
  }
}

TEST(VmProperty, EncodeIsInjectiveOnOperands) {
  // Distinct (op, rd, rs1, rs2, imm) tuples encode to distinct bytes.
  Rng rng(11);
  std::map<Bytes, Instruction> seen;
  for (int i = 0; i < 500; ++i) {
    Instruction insn;
    insn.op = Opcode::kAddi;
    insn.rd = static_cast<u8>(rng.below(16));
    insn.rs1 = static_cast<u8>(rng.below(16));
    insn.rs2 = static_cast<u8>(rng.below(16));
    insn.imm = rng.next_u32();
    Bytes enc;
    encode(insn, enc);
    auto [it, inserted] = seen.emplace(enc, insn);
    if (!inserted) {
      EXPECT_EQ(it->second, insn);  // identical encoding => identical insn
    }
  }
}

}  // namespace
}  // namespace faros::vm
