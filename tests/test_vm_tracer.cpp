// src/vm/tracer.cpp + src/vm/trace_ring.h: the execution tracer's
// deterministic-replay property (two replays of one recording see
// byte-identical event streams), plugin chaining, and the SPSC trace
// ring's wrap / backpressure / drain behavior at tiny capacities.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "attacks/scenarios.h"
#include "vm/trace_ring.h"
#include "vm/tracer.h"

namespace faros {
namespace {

using vm::DiftEvent;
using vm::Tracer;
using vm::TraceRing;

// --- Tracer: deterministic replay -----------------------------------------

bool same_entry(const Tracer::Entry& a, const Tracer::Entry& b) {
  return a.instr_index == b.instr_index && a.cr3 == b.cr3 && a.pc == b.pc &&
         a.insn.op == b.insn.op && a.insn.rd == b.insn.rd &&
         a.insn.rs1 == b.insn.rs1 && a.insn.rs2 == b.insn.rs2 &&
         a.insn.imm == b.insn.imm && a.has_mem == b.has_mem &&
         a.mem_va == b.mem_va && a.mem_write == b.mem_write;
}

TEST(TracerReplay, TwoReplaysOfOneRecordingSeeIdenticalStreams) {
  attacks::HollowingScenario sc;
  auto run = attacks::record_run(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;

  Tracer t1, t2;
  auto r1 = attacks::replay_run(sc, run.value().log, &t1, {});
  auto r2 = attacks::replay_run(sc, run.value().log, &t2, {});
  ASSERT_TRUE(r1.ok()) << r1.error().message;
  ASSERT_TRUE(r2.ok()) << r2.error().message;

  // The whole-stream summary must match exactly...
  EXPECT_GT(t1.total(), 0u);
  EXPECT_EQ(t1.total(), t2.total());
  EXPECT_EQ(t1.blocks(), t2.blocks());
  EXPECT_EQ(r1.value().stats.instructions, r2.value().stats.instructions);
  for (const auto& e : t1.entries()) {
    EXPECT_EQ(t1.count_for(e.cr3), t2.count_for(e.cr3));
  }
  // ...and so must every retained ring entry, field for field.
  ASSERT_EQ(t1.entries().size(), t2.entries().size());
  for (size_t i = 0; i < t1.entries().size(); ++i) {
    EXPECT_TRUE(same_entry(t1.entries()[i], t2.entries()[i])) << "entry " << i;
  }
}

TEST(TracerReplay, ChainedDownstreamSeesTheSameStream) {
  attacks::HollowingScenario sc;
  auto run = attacks::record_run(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;

  Tracer upstream, downstream;
  upstream.chain(&downstream);
  auto r = attacks::replay_run(sc, run.value().log, &upstream, {});
  ASSERT_TRUE(r.ok()) << r.error().message;

  EXPECT_EQ(upstream.total(), downstream.total());
  EXPECT_EQ(upstream.blocks(), downstream.blocks());
  ASSERT_EQ(upstream.entries().size(), downstream.entries().size());
  for (size_t i = 0; i < upstream.entries().size(); ++i) {
    EXPECT_TRUE(same_entry(upstream.entries()[i], downstream.entries()[i]));
  }
}

TEST(TracerReplay, CapacityBoundsRingAndDumpDisassembles) {
  attacks::HollowingScenario sc;
  auto run = attacks::record_run(sc);
  ASSERT_TRUE(run.ok()) << run.error().message;

  Tracer t(64);
  auto r = attacks::replay_run(sc, run.value().log, &t, {});
  ASSERT_TRUE(r.ok()) << r.error().message;

  EXPECT_LE(t.entries().size(), 64u);
  EXPECT_GT(t.total(), t.entries().size());  // ring evicted older entries
  // Surviving entries are the most recent ones, in retirement order.
  for (size_t i = 1; i < t.entries().size(); ++i) {
    EXPECT_GT(t.entries()[i].instr_index, t.entries()[i - 1].instr_index);
  }
  EXPECT_FALSE(t.dump(8).empty());

  t.clear();
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.blocks(), 0u);
  EXPECT_TRUE(t.entries().empty());
}

// --- TraceRing: wrap, backpressure, drain ----------------------------------

DiftEvent insn_event(u64 index) {
  DiftEvent e;
  e.kind = DiftEvent::kInsn;
  e.instr_index = index;
  e.pc = static_cast<u32>(index * 8);
  return e;
}

TEST(TraceRing8, CapacityRoundsUpToPowerOfTwoMinimumEight) {
  EXPECT_EQ(TraceRing(0).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
  EXPECT_EQ(TraceRing(9).capacity(), 16u);
  EXPECT_EQ(TraceRing(16).capacity(), 16u);
  EXPECT_EQ(TraceRing().capacity(), TraceRing::kDefaultCapacity);
}

TEST(TraceRing8, FifoOrderSurvivesWrapAround) {
  TraceRing ring(8);
  u64 next_push = 0, next_pop = 0;
  // Fill, half-drain, refill — the ring wraps twice.
  for (int round = 0; round < 3; ++round) {
    while (next_push - next_pop < ring.capacity()) {
      ring.push(insn_event(next_push++));
    }
    for (size_t i = 0; i < ring.capacity() / 2; ++i) {
      const DiftEvent* e = ring.front();
      ASSERT_NE(e, nullptr);
      EXPECT_EQ(e->instr_index, next_pop);
      EXPECT_EQ(e->pc, next_pop * 8);
      ++next_pop;
      ring.pop_front();
    }
  }
  while (next_pop < next_push) {
    const DiftEvent* e = ring.front();
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->instr_index, next_pop++);
    ring.pop_front();
  }
  EXPECT_EQ(ring.front(), nullptr);
  EXPECT_EQ(ring.stats().records, next_push);
  EXPECT_EQ(ring.stats().max_depth, ring.capacity());
}

// Producer floods a tiny ring while the consumer starts late and pops
// one-by-one: exercises the full/empty edges, the producer stall path and
// the cached-counter refresh on both sides.
void backpressure_stress(size_t capacity) {
  constexpr u64 kRecords = 20'000;
  TraceRing ring(capacity);

  std::thread producer([&] {
    for (u64 i = 0; i < kRecords; ++i) ring.push(insn_event(i));
    DiftEvent end;
    end.kind = DiftEvent::kEnd;
    ring.push(end);
  });

  // Let the producer hit a full ring before consuming anything.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  u64 expect = 0;
  bool in_order = true;
  for (;;) {
    const DiftEvent* e = ring.front_wait();
    if (e->kind == DiftEvent::kEnd) { ring.pop_front(); break; }
    in_order = in_order && e->instr_index == expect;
    ++expect;
    ring.pop_front();
  }
  producer.join();

  EXPECT_TRUE(in_order);
  EXPECT_EQ(expect, kRecords);
  vm::TraceRingStats s = ring.stats();
  EXPECT_EQ(s.records, kRecords + 1);
  EXPECT_GT(s.producer_stalls, 0u);  // the 20 ms head start guarantees a stall
  EXPECT_LE(s.max_depth, capacity);
  EXPECT_EQ(s.max_depth, capacity);  // and the ring really did fill
}

TEST(TraceRingStress, BackpressureAtEightSlots) { backpressure_stress(8); }
TEST(TraceRingStress, BackpressureAtSixteenSlots) { backpressure_stress(16); }

TEST(TraceRingDrain, DrainReturnsOnlyAfterRecordsAreFullyProcessed) {
  constexpr u64 kRecords = 1'000;
  TraceRing ring(16);
  std::atomic<u64> processed{0};
  std::atomic<bool> stop{false};

  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const DiftEvent* e = ring.front();
      if (!e) { std::this_thread::yield(); continue; }
      // Side effects land *before* pop_front — the drain() contract.
      processed.fetch_add(1, std::memory_order_release);
      ring.pop_front();
    }
  });

  for (u64 i = 0; i < kRecords; ++i) ring.push(insn_event(i));
  ring.drain();
  // drain() returned: every record is processed, none half-held.
  EXPECT_EQ(processed.load(std::memory_order_acquire), kRecords);

  // The ring is reusable after a drain.
  ring.push(insn_event(kRecords));
  ring.drain();
  EXPECT_EQ(processed.load(std::memory_order_acquire), kRecords + 1);

  stop.store(true, std::memory_order_release);
  consumer.join();
}

TEST(TraceRingDescribe, KindNamesAndDumpsAreHumanReadable) {
  EXPECT_STREQ(vm::dift_event_kind_name(DiftEvent::kInsn), "insn");
  EXPECT_STREQ(vm::dift_event_kind_name(DiftEvent::kBulk), "bulk");
  EXPECT_STREQ(vm::dift_event_kind_name(DiftEvent::kWindow), "window");
  EXPECT_STREQ(vm::dift_event_kind_name(DiftEvent::kEnd), "end");
  EXPECT_STREQ(vm::dift_event_kind_name(0xff), "?");

  DiftEvent e = insn_event(7);
  e.flags = DiftEvent::kHasMem | DiftEvent::kIsWrite;
  e.mem_va = 0x1000;
  e.mem_pa = 0x2000;
  std::string d = vm::describe(e);
  EXPECT_NE(d.find("insn"), std::string::npos);
  EXPECT_NE(d.find("#7"), std::string::npos);
  EXPECT_NE(d.find("st@"), std::string::npos);

  DiftEvent bulk;
  bulk.kind = DiftEvent::kBulk;
  bulk.mem_pa = 4096;
  bulk.imm = 12;
  EXPECT_NE(vm::describe(bulk).find("insns=12"), std::string::npos);
}

}  // namespace
}  // namespace faros
