// faros_lint — static FV32 analyzer CLI over the scenario corpus.
//
// For every corpus program: boots a scratch machine, runs scenario setup to
// extract the installed SX32 images (zero guest instructions retired), and
// runs the src/sa analyzer — CFG recovery, constant-propagation dataflow,
// and the injection-shaped lint rules. Emits deterministic JSONL: one
// "finding" line per lint hit, one "image" line per analyzed image, one
// "program" line per corpus entry, then a "lint_summary" line. The stream
// is a pure function of the corpus, so CI can diff it across runs.
//
//   faros_lint                            # full corpus to stdout
//   faros_lint --category injection
//   faros_lint --filter hollow --out lint.jsonl
//   faros_lint --list                     # print the catalogue and exit
//
// Exit code: 0 when every program analyzed, 1 on extraction errors or bad
// usage. Static findings do NOT affect the exit code — the analyzer is an
// oracle, not a gate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "common/json.h"
#include "sa/analyzer.h"

using namespace faros;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: faros_lint [options]\n"
               "  --jobs N         analyze at most N programs (default: all)\n"
               "  --filter STR     only programs whose name contains STR\n"
               "  --category STR   only programs in this category\n"
               "                   (injection | jit | malware | benign)\n"
               "  --out PATH       write the JSONL stream to PATH\n"
               "                   (default: stdout)\n"
               "  --risk-threshold N\n"
               "                   summed finding weight at which a program\n"
               "                   counts as static-flagged (default: 10)\n"
               "  --policies       policy-aware pruning report: one line per\n"
               "                   program naming the rule triggers statically\n"
               "                   proven unreachable (what faros_triage\n"
               "                   --static-prune masks), plus a summary\n"
               "  --list           print the catalogue and exit\n"
               "  --quiet          no per-program console lines\n");
}

bool parse_u64(const char* s, u64* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (!end || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string filter, category, out_path;
  u64 max_jobs = 0;
  u64 risk_threshold = sa::kStaticRiskThreshold;
  bool list_only = false, quiet = false, policies = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc || !parse_u64(argv[++i], &max_jobs)) {
        std::fprintf(stderr, "faros_lint: --jobs needs a number\n");
        usage();
        return 1;
      }
    }
    else if (arg == "--risk-threshold") {
      if (i + 1 >= argc || !parse_u64(argv[++i], &risk_threshold) ||
          risk_threshold == 0) {
        std::fprintf(stderr,
                     "faros_lint: --risk-threshold needs a number >= 1\n");
        usage();
        return 1;
      }
    }
    else if (arg == "--policies") policies = true;
    else if (arg == "--filter" && i + 1 < argc) filter = argv[++i];
    else if (arg == "--category" && i + 1 < argc) category = argv[++i];
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--list") list_only = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else {
      std::fprintf(stderr, "faros_lint: unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }

  std::vector<attacks::CorpusEntry> entries;
  for (auto& e : attacks::full_corpus()) {
    if (!filter.empty() && e.name.find(filter) == std::string::npos) continue;
    if (!category.empty() && e.category != category) continue;
    if (max_jobs && entries.size() >= max_jobs) break;
    entries.push_back(std::move(e));
  }
  if (entries.empty()) {
    std::fprintf(stderr, "faros_lint: no programs match\n");
    return 1;
  }

  if (list_only) {
    std::printf("%-36s %s\n", "program", "category");
    for (const auto& e : entries) {
      std::printf("%-36s %s\n", e.name.c_str(), e.category.c_str());
    }
    std::printf("%zu programs\n", entries.size());
    return 0;
  }

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "faros_lint: cannot open '%s'\n", out_path.c_str());
      return 1;
    }
  }

  u32 programs = 0, flagged = 0, findings = 0, errors = 0;
  u64 blocks = 0, insns = 0;
  u32 pruned_programs = 0, pruned_bits = 0;
  sa::SaOptions sopts;
  sopts.risk_threshold = static_cast<u32>(risk_threshold);
  for (const auto& e : entries) {
    auto sc = e.make();
    auto extracted = attacks::extract_images(*sc);
    if (!extracted.ok()) {
      ++errors;
      JsonWriter w;
      w.field("type", "error")
          .field("program", e.name)
          .field("error", extracted.error().message);
      std::fprintf(out, "%s\n", w.str().c_str());
      if (!quiet) {
        std::fprintf(stderr, "%-36s error: %s\n", e.name.c_str(),
                     extracted.error().message.c_str());
      }
      continue;
    }
    std::vector<os::Image> images;
    images.reserve(extracted.value().size());
    for (auto& x : extracted.value()) images.push_back(std::move(x.image));

    sa::ProgramReport rep = sa::analyze_images(e.name, images, sopts);
    ++programs;
    if (rep.flagged()) ++flagged;
    findings += rep.findings;
    blocks += rep.blocks;
    insns += rep.insns;
    if (rep.trigger_mask) ++pruned_programs;
    pruned_bits += static_cast<u32>(__builtin_popcount(rep.trigger_mask));

    if (policies) {
      // Pruning report mode: one policy line per program, nothing else.
      std::fprintf(out, "%s\n", sa::policy_jsonl(e.category, rep).c_str());
      if (!quiet) {
        std::fprintf(stderr, "%-36s %-10s mask %x %s\n", e.name.c_str(),
                     e.category.c_str(), rep.trigger_mask,
                     sa::trigger_mask_json(rep.trigger_mask).c_str());
      }
      continue;
    }

    for (const auto& ir : rep.per_image) {
      for (const auto& f : ir.findings) {
        std::fprintf(out, "%s\n",
                     sa::finding_jsonl(e.name, ir.image, f).c_str());
      }
      std::fprintf(out, "%s\n", sa::image_jsonl(e.name, ir).c_str());
    }
    std::fprintf(out, "%s\n", sa::program_jsonl(e.category, rep).c_str());

    if (!quiet) {
      std::fprintf(stderr, "%-36s %-10s %2u images %4u blocks risk %3u%s\n",
                   e.name.c_str(), e.category.c_str(), rep.images, rep.blocks,
                   rep.risk, rep.flagged() ? "  FLAGGED" : "");
    }
  }

  JsonWriter w;
  if (policies) {
    w.field("type", "policy_summary")
        .field("programs", programs)
        .field("pruned_programs", pruned_programs)
        .field("pruned_triggers", pruned_bits)
        .field("errors", errors);
  } else {
    w.field("type", "lint_summary")
        .field("programs", programs)
        .field("flagged", flagged)
        .field("findings", findings)
        .field("blocks", blocks)
        .field("insns", insns)
        .field("errors", errors);
  }
  std::fprintf(out, "%s\n", w.str().c_str());
  if (out != stdout) std::fclose(out);

  if (!quiet) {
    std::fprintf(stderr,
                 "%u programs: %u static-flagged, %u findings, %u errors\n",
                 programs, flagged, findings, errors);
  }
  return errors == 0 ? 0 : 1;
}
