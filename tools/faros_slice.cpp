// faros_slice — query CLI over .fpg provenance-graph artifacts
// (written by `faros_triage --graph-out` / farm::FarmConfig::graph_out).
//
//   faros_slice info     --graph job.fpg            # counts + node table
//   faros_slice backward --graph job.fpg --from finding:0
//   faros_slice forward  --graph job.fpg --from netflow:0
//   faros_slice export   --graph job.fpg --dot      # Graphviz to stdout
//   faros_slice export   --graph job.fpg --jsonl    # node/edge JSONL
//
// backward answers "where did this artifact come from" (slice against data
// flow until the netflow/file sources); forward answers "what did this
// source reach". Both print the stable slice JSONL of graph::slice — byte
// reproducible for a given graph, so goldens can diff it.
//
// Exit code: 0 on success, 1 on bad usage / unreadable graph / unknown
// node reference.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/graph.h"
#include "graph/slice.h"

using namespace faros;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: faros_slice <command> --graph PATH [options]\n"
               "commands:\n"
               "  info                 graph summary + per-type node table\n"
               "  backward             slice against data flow (origins)\n"
               "  forward              slice along data flow (reach)\n"
               "  export               whole-graph rendering to stdout\n"
               "options:\n"
               "  --graph PATH         .fpg artifact (required)\n"
               "  --from TYPE:INDEX    slice root, e.g. finding:0, netflow:2\n"
               "                       (required for backward/forward)\n"
               "  --depth N            max hops from the root (default 32)\n"
               "  --fanout N           neighbours expanded per node "
               "(default 64)\n"
               "  --dot | --jsonl      export format (default --jsonl)\n");
}

bool parse_u32(const char* s, u32* out) {
  char* end = nullptr;
  unsigned long v = std::strtoul(s, &end, 10);
  if (!end || *end != '\0' || v > 0xfffffffful) return false;
  *out = static_cast<u32>(v);
  return true;
}

Result<graph::ProvGraph> load_graph(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Err<graph::ProvGraph>("cannot open '" + path + "'");
  Bytes data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return graph::deserialize(ByteSpan(data.data(), data.size()));
}

int cmd_info(const graph::ProvGraph& g) {
  std::printf("%zu nodes, %zu edges\n", g.nodes.size(), g.edges.size());
  for (u32 t = 0; t < graph::kNodeTypeCount; ++t) {
    auto type = static_cast<graph::NodeType>(t);
    size_t count = g.count(type);
    if (!count) continue;
    std::printf("  %-8s %zu\n", graph::node_type_name(type), count);
  }
  for (const auto& node : g.nodes) {
    std::printf("%-12s %-24s %s\n",
                (graph::node_type_name(node.type) + std::string(":") +
                 std::to_string(node.index))
                    .c_str(),
                node.name.c_str(), node.detail.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  std::string command = argv[1];
  std::string graph_path, from_ref;
  graph::SliceOptions opts;
  bool dot = false, jsonl = false;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--graph" && i + 1 < argc) graph_path = argv[++i];
    else if (arg == "--from" && i + 1 < argc) from_ref = argv[++i];
    else if (arg == "--depth" && i + 1 < argc) {
      if (!parse_u32(argv[++i], &opts.max_depth)) {
        std::fprintf(stderr, "faros_slice: --depth needs a number\n");
        return 1;
      }
    } else if (arg == "--fanout" && i + 1 < argc) {
      if (!parse_u32(argv[++i], &opts.max_fanout)) {
        std::fprintf(stderr, "faros_slice: --fanout needs a number\n");
        return 1;
      }
    } else if (arg == "--dot") dot = true;
    else if (arg == "--jsonl") jsonl = true;
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else {
      std::fprintf(stderr, "faros_slice: unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  if (command == "--help" || command == "-h") {
    usage();
    return 0;
  }
  if (graph_path.empty()) {
    std::fprintf(stderr, "faros_slice: --graph is required\n");
    usage();
    return 1;
  }

  auto loaded = load_graph(graph_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "faros_slice: %s: %s\n", graph_path.c_str(),
                 loaded.error().message.c_str());
    return 1;
  }
  const graph::ProvGraph g = std::move(loaded).take();

  if (command == "info") return cmd_info(g);

  if (command == "export") {
    if (dot && jsonl) {
      std::fprintf(stderr, "faros_slice: pick one of --dot / --jsonl\n");
      return 1;
    }
    std::fputs(dot ? graph::render_dot(g).c_str()
                   : graph::render_jsonl(g).c_str(),
               stdout);
    return 0;
  }

  if (command != "backward" && command != "forward") {
    std::fprintf(stderr, "faros_slice: unknown command '%s'\n",
                 command.c_str());
    usage();
    return 1;
  }
  opts.forward = command == "forward";
  if (from_ref.empty()) {
    std::fprintf(stderr, "faros_slice: %s needs --from TYPE:INDEX\n",
                 command.c_str());
    return 1;
  }
  auto parsed = graph::parse_node_ref(from_ref);
  if (!parsed.ok()) {
    std::fprintf(stderr, "faros_slice: %s\n", parsed.error().message.c_str());
    return 1;
  }
  auto root = g.node_id(parsed.value().first, parsed.value().second);
  if (!root) {
    std::fprintf(stderr, "faros_slice: node '%s' not in this graph\n",
                 from_ref.c_str());
    return 1;
  }
  graph::Slice s = graph::slice(g, *root, opts);
  std::fputs(graph::render_slice_jsonl(g, s, opts).c_str(), stdout);
  return 0;
}
