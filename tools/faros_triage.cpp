// faros_triage — corpus triage CLI over the farm.
//
// Fans the scenario corpus (11 injection attacks, 20 JIT workloads, the
// 104-sample Table IV battery) across a worker pool, streams one JSONL
// record per job in stable job-id order, and prints a scored summary.
//
//   faros_triage                         # full corpus, hardware workers
//   faros_triage --workers 4 --filter jit
//   faros_triage --category injection --out results.jsonl
//   faros_triage --metrics metrics.jsonl # obs counter stream per job
//   faros_triage --list                  # print the catalogue and exit
//   faros_triage --policies my.json      # replace the built-in ruleset
//   faros_triage --policies a.json,b.json
//                                        # record once, analyze under every
//                                        # set (policy_runs JSONL field)
//   faros_triage --sync-dift             # historical inline engine (A/B)
//   faros_triage --list-policies         # print the effective ruleset JSON
//   faros_triage --graph-out graphs/     # one .fpg provenance graph per job
//
// Argument parsing lives in src/farm/triage_cli.{h,cpp} so tests can drive
// the exact parser this binary uses; this file is only corpus assembly,
// streaming and the scored summary.
//
// Loading a policy file (or asking for --category policy) also enumerates
// the policy corpus — scenarios like multi_stage_c2 whose ground truth
// depends on the loaded ruleset, kept out of the default catalogue so the
// built-in-rule scoring stays byte-stable.
//
// FAROS_METRICS_JSON=<path> in the environment is a fallback for --metrics
// (mirroring FAROS_BENCH_JSON for the benches); the flag wins when both
// are given.
//
// Exit code: 0 when every job completed (flagged or clean), 1 on harness
// errors / timeouts / bad usage.
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "core/rules.h"
#include "farm/farm.h"
#include "farm/results.h"
#include "farm/triage_cli.h"

using namespace faros;

int main(int argc, char** argv) {
  farm::TriageCliResult cli =
      farm::parse_triage_cli({argv + 1, argv + argc});
  if (!cli.ok()) {
    std::fprintf(stderr, "faros_triage: %s\n%s", cli.error.c_str(),
                 farm::triage_usage().c_str());
    return 1;
  }
  farm::TriageCliOptions& opt = cli.opts;
  if (opt.help) {
    std::fprintf(stderr, "%s", farm::triage_usage().c_str());
    return 0;
  }

  std::string perr = farm::load_policy_files(opt);
  if (!perr.empty()) {
    std::fprintf(stderr, "faros_triage: %s\n", perr.c_str());
    return 1;
  }
  farm::FarmConfig& cfg = opt.farm;

  if (opt.list_policies) {
    // Print the ruleset the engine would actually run — the policy file if
    // one was loaded, otherwise the built-ins selected by the (default)
    // engine option toggles — in policy-file JSON, so the output can be
    // saved and fed back through --policies unchanged.
    std::vector<core::RuleSpec> specs = cfg.engine_opts.rules;
    if (specs.empty()) {
      specs = core::builtin_rules(cfg.engine_opts.policy_netflow_export,
                                  cfg.engine_opts.policy_cross_process_export,
                                  cfg.engine_opts.policy_tainted_code_write);
    }
    std::printf("%s\n", core::ruleset_json(specs).c_str());
    return 0;
  }

  std::vector<attacks::CorpusEntry> catalogue = attacks::full_corpus();
  if (!opt.policy_paths.empty() || opt.category == "policy") {
    // Policy-dependent scenarios only make sense when the ruleset that
    // defines their ground truth is in play (or when asked for by name).
    for (auto& e : attacks::policy_corpus()) catalogue.push_back(std::move(e));
  }
  std::vector<farm::JobSpec> jobs;
  for (auto& e : catalogue) {
    if (!opt.filter.empty() && e.name.find(opt.filter) == std::string::npos) {
      continue;
    }
    if (!opt.category.empty() && e.category != opt.category) continue;
    if (opt.max_jobs && jobs.size() >= opt.max_jobs) break;
    farm::JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    spec.budget_override = opt.budget;
    jobs.push_back(std::move(spec));
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "faros_triage: no jobs match\n");
    return 1;
  }

  if (opt.list_only) {
    std::printf("%-36s %-10s %s\n", "job", "category", "expected");
    for (const auto& j : jobs) {
      std::printf("%-36s %-10s %s\n", j.name.c_str(), j.category.c_str(),
                  j.expect_flagged ? "flagged" : "clean");
    }
    std::printf("%zu jobs\n", jobs.size());
    return 0;
  }

  FILE* out = nullptr;
  if (!opt.out_path.empty()) {
    out = std::fopen(opt.out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "faros_triage: cannot open '%s'\n",
                   opt.out_path.c_str());
      return 1;
    }
  }
  FILE* metrics_out = nullptr;
  if (!opt.metrics_path.empty()) {
    metrics_out = std::fopen(opt.metrics_path.c_str(), "w");
    if (!metrics_out) {
      std::fprintf(stderr, "faros_triage: cannot open '%s'\n",
                   opt.metrics_path.c_str());
      if (out) std::fclose(out);
      return 1;
    }
  }

  // Stream each record the moment the reorder buffer releases it: the
  // console and the JSONL file both see stable job-id order live.
  const size_t total = jobs.size();  // jobs is moved into run() below
  const bool quiet = opt.quiet;
  cfg.on_result = [&](const farm::JobResult& r) {
    if (out) std::fprintf(out, "%s\n", farm::job_jsonl(r).c_str());
    if (metrics_out && r.metrics.collected) {
      std::fprintf(metrics_out, "%s\n", farm::job_metrics_jsonl(r).c_str());
    }
    if (!quiet) {
      std::printf("[%4u/%4zu] %-36s %-10s %-9s %-3s %s\n", r.id + 1,
                  total, r.name.c_str(), r.category.c_str(),
                  farm::job_status_name(r.status), r.verdict(),
                  r.error.c_str());
      std::fflush(stdout);
    }
  };

  farm::Farm f(cfg);
  farm::TriageReport report = f.run(std::move(jobs));

  if (out) {
    std::fprintf(out, "%s\n", farm::summary_jsonl(report.metrics).c_str());
    std::fclose(out);
  }
  if (metrics_out) {
    std::fprintf(metrics_out, "%s\n",
                 farm::metrics_summary_jsonl(report).c_str());
    std::fclose(metrics_out);
  }

  u32 tp = 0, fp = 0, tn = 0, fn = 0;
  for (const auto& r : report.results) {
    std::string v = r.verdict();
    if (v == "TP") ++tp;
    else if (v == "FP") ++fp;
    else if (v == "TN") ++tn;
    else if (v == "FN") ++fn;
  }
  std::printf("\n%s\n", farm::summary_text(report.metrics).c_str());
  std::printf("scoring vs paper ground truth: %u TP, %u FP, %u TN, %u FN\n",
              tp, fp, tn, fn);

  if (cfg.static_prefilter) {
    // Score the static oracle against the same ground truth, then show how
    // static and dynamic verdicts line up per job. The static pass never
    // changes dynamic results; these tables are purely diagnostic.
    u32 stp = 0, sfp = 0, stn = 0, sfn = 0, serr = 0;
    u32 both = 0, dyn_only = 0, sta_only = 0, neither = 0;
    for (const auto& r : report.results) {
      std::string sv = r.static_verdict();
      if (sv == "TP") ++stp;
      else if (sv == "FP") ++sfp;
      else if (sv == "TN") ++stn;
      else if (sv == "FN") ++sfn;
      else ++serr;
      if (r.status == farm::JobStatus::kOk && r.sa_analyzed) {
        if (r.flagged && r.sa_flagged) ++both;
        else if (r.flagged) ++dyn_only;
        else if (r.sa_flagged) ++sta_only;
        else ++neither;
      }
    }
    std::printf("static prefilter vs ground truth: %u TP, %u FP, %u TN, "
                "%u FN%s\n",
                stp, sfp, stn, sfn,
                serr ? " (+ unanalyzed jobs)" : "");
    std::printf("static vs dynamic agreement: %u both-flag, %u dynamic-only, "
                "%u static-only, %u both-clean\n",
                both, dyn_only, sta_only, neither);
  }

  bool clean_run = report.metrics.errors == 0 && report.metrics.timeouts == 0 &&
                   report.metrics.cancelled == 0;
  return clean_run ? 0 : 1;
}
