// faros_triage — corpus triage CLI over the farm.
//
// Fans the scenario corpus (11 injection attacks, 20 JIT workloads, the
// 104-sample Table IV battery) across a worker pool, streams one JSONL
// record per job in stable job-id order, and prints a scored summary.
//
//   faros_triage                         # full corpus, hardware workers
//   faros_triage --workers 4 --filter jit
//   faros_triage --category injection --out results.jsonl
//   faros_triage --metrics metrics.jsonl # obs counter stream per job
//   faros_triage --list                  # print the catalogue and exit
//   faros_triage --policies my.json      # replace the built-in ruleset
//   faros_triage --list-policies         # print the effective ruleset JSON
//   faros_triage --graph-out graphs/     # one .fpg provenance graph per job
//
// Loading a policy file (or asking for --category policy) also enumerates
// the policy corpus — scenarios like multi_stage_c2 whose ground truth
// depends on the loaded ruleset, kept out of the default catalogue so the
// built-in-rule scoring stays byte-stable.
//
// FAROS_METRICS_JSON=<path> in the environment is a fallback for --metrics
// (mirroring FAROS_BENCH_JSON for the benches); the flag wins when both
// are given.
//
// Exit code: 0 when every job completed (flagged or clean), 1 on harness
// errors / timeouts / bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/corpus.h"
#include "core/rules.h"
#include "farm/farm.h"
#include "farm/results.h"

using namespace faros;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: faros_triage [options]\n"
               "  --workers N      worker threads (default: hardware)\n"
               "  --jobs N         run at most N jobs (default: all)\n"
               "  --filter STR     only jobs whose name contains STR\n"
               "  --category STR   only jobs in this category\n"
               "                   (injection | jit | malware | benign |\n"
               "                   policy)\n"
               "  --timeout-ms N   per-job wall-clock deadline (default "
               "60000; 0 = none)\n"
               "  --budget N       per-job instruction budget override\n"
               "  --out PATH       write JSONL records + summary to PATH\n"
               "  --metrics PATH   write per-job obs counter JSONL to PATH\n"
               "                   (or set FAROS_METRICS_JSON)\n"
               "  --no-block-cache\n"
               "                   disable the block-translation cache in\n"
               "                   both machines and the engine's elision\n"
               "                   fast path (detection verdicts are\n"
               "                   byte-identical either way; CI pins this)\n"
               "  --no-summary-elide\n"
               "                   ignore static summary elide hints: only\n"
               "                   per-opcode taint-inert blocks run the\n"
               "                   uninstrumented fast body (detection\n"
               "                   verdicts are byte-identical either way;\n"
               "                   CI pins this)\n"
               "  --snapshot / --no-snapshot\n"
               "                   boot the guest once and run each job as a\n"
               "                   copy-on-write clone of the frozen image\n"
               "                   (default: on; verdicts are byte-identical\n"
               "                   either way; CI pins this)\n"
               "  --static-prefilter\n"
               "                   run the zero-execution static analyzer\n"
               "                   (src/sa) per job before record/replay and\n"
               "                   score it next to the dynamic verdicts\n"
               "  --static-prune   mask rule triggers the static analyzer\n"
               "                   proved unreachable per job, skipping their\n"
               "                   hot-path input computation (detection and\n"
               "                   per-rule eval counts are byte-identical\n"
               "                   either way; CI pins this)\n"
               "  --policies PATH  load the confluence ruleset from a JSON\n"
               "                   policy file (replaces the built-ins and\n"
               "                   adds the policy-corpus jobs)\n"
               "  --graph-out DIR  write one provenance-graph artifact per\n"
               "                   job to DIR/<job>.fpg (src/graph format;\n"
               "                   byte-identical for any --workers)\n"
               "  --list-policies  print the effective ruleset as policy-file\n"
               "                   JSON and exit\n"
               "  --list           print the job catalogue and exit\n"
               "  --quiet          no per-job console lines\n");
}

bool parse_u64(const char* s, u64* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (!end || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  farm::FarmConfig cfg;
  std::string filter, category, out_path, metrics_path, policies_path;
  u64 max_jobs = 0, budget = 0, workers = 0;
  bool list_only = false, list_policies = false, quiet = false;
  if (const char* env = std::getenv("FAROS_METRICS_JSON")) metrics_path = env;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](u64* out) {
      if (i + 1 >= argc || !parse_u64(argv[++i], out)) {
        std::fprintf(stderr, "faros_triage: %s needs a number\n", arg.c_str());
        usage();
        std::exit(1);
      }
    };
    if (arg == "--workers") next(&workers);
    else if (arg == "--jobs") next(&max_jobs);
    else if (arg == "--timeout-ms") next(&cfg.timeout_ms);
    else if (arg == "--budget") next(&budget);
    else if (arg == "--filter" && i + 1 < argc) filter = argv[++i];
    else if (arg == "--category" && i + 1 < argc) category = argv[++i];
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else if (arg == "--metrics" && i + 1 < argc) metrics_path = argv[++i];
    else if (arg == "--policies" && i + 1 < argc) policies_path = argv[++i];
    else if (arg == "--graph-out" && i + 1 < argc) cfg.graph_out = argv[++i];
    else if (arg == "--no-block-cache") {
      cfg.machine.kernel.block_cache = false;
      cfg.engine_opts.block_cache = false;
    }
    else if (arg == "--no-summary-elide") {
      cfg.engine_opts.summary_elide = false;
    }
    else if (arg == "--snapshot") cfg.snapshot = true;
    else if (arg == "--no-snapshot") cfg.snapshot = false;
    else if (arg == "--static-prefilter") cfg.static_prefilter = true;
    else if (arg == "--static-prune") cfg.static_prune = true;
    else if (arg == "--list-policies") list_policies = true;
    else if (arg == "--list") list_only = true;
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else {
      std::fprintf(stderr, "faros_triage: unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }
  cfg.workers = static_cast<u32>(workers);

  if (!policies_path.empty()) {
    FILE* pf = std::fopen(policies_path.c_str(), "rb");
    if (!pf) {
      std::fprintf(stderr, "faros_triage: cannot open '%s'\n",
                   policies_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pf)) > 0) text.append(buf, n);
    std::fclose(pf);
    auto rules = core::parse_ruleset_json(text);
    if (!rules.ok()) {
      std::fprintf(stderr, "faros_triage: %s: %s\n", policies_path.c_str(),
                   rules.error().message.c_str());
      return 1;
    }
    cfg.engine_opts.rules = std::move(rules).take();
  }

  if (list_policies) {
    // Print the ruleset the engine would actually run — the policy file if
    // one was loaded, otherwise the built-ins selected by the (default)
    // engine option toggles — in policy-file JSON, so the output can be
    // saved and fed back through --policies unchanged.
    std::vector<core::RuleSpec> specs = cfg.engine_opts.rules;
    if (specs.empty()) {
      specs = core::builtin_rules(cfg.engine_opts.policy_netflow_export,
                                  cfg.engine_opts.policy_cross_process_export,
                                  cfg.engine_opts.policy_tainted_code_write);
    }
    std::printf("%s\n", core::ruleset_json(specs).c_str());
    return 0;
  }

  std::vector<attacks::CorpusEntry> catalogue = attacks::full_corpus();
  if (!policies_path.empty() || category == "policy") {
    // Policy-dependent scenarios only make sense when the ruleset that
    // defines their ground truth is in play (or when asked for by name).
    for (auto& e : attacks::policy_corpus()) catalogue.push_back(std::move(e));
  }
  std::vector<farm::JobSpec> jobs;
  for (auto& e : catalogue) {
    if (!filter.empty() && e.name.find(filter) == std::string::npos) continue;
    if (!category.empty() && e.category != category) continue;
    if (max_jobs && jobs.size() >= max_jobs) break;
    farm::JobSpec spec;
    spec.name = e.name;
    spec.category = e.category;
    spec.expect_flagged = e.expect_flagged;
    spec.make = e.make;
    spec.budget_override = budget;
    jobs.push_back(std::move(spec));
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "faros_triage: no jobs match\n");
    return 1;
  }

  if (list_only) {
    std::printf("%-36s %-10s %s\n", "job", "category", "expected");
    for (const auto& j : jobs) {
      std::printf("%-36s %-10s %s\n", j.name.c_str(), j.category.c_str(),
                  j.expect_flagged ? "flagged" : "clean");
    }
    std::printf("%zu jobs\n", jobs.size());
    return 0;
  }

  FILE* out = nullptr;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "faros_triage: cannot open '%s'\n",
                   out_path.c_str());
      return 1;
    }
  }
  FILE* metrics_out = nullptr;
  if (!metrics_path.empty()) {
    metrics_out = std::fopen(metrics_path.c_str(), "w");
    if (!metrics_out) {
      std::fprintf(stderr, "faros_triage: cannot open '%s'\n",
                   metrics_path.c_str());
      if (out) std::fclose(out);
      return 1;
    }
  }

  // Stream each record the moment the reorder buffer releases it: the
  // console and the JSONL file both see stable job-id order live.
  const size_t total = jobs.size();  // jobs is moved into run() below
  cfg.on_result = [&](const farm::JobResult& r) {
    if (out) std::fprintf(out, "%s\n", farm::job_jsonl(r).c_str());
    if (metrics_out && r.metrics.collected) {
      std::fprintf(metrics_out, "%s\n", farm::job_metrics_jsonl(r).c_str());
    }
    if (!quiet) {
      std::printf("[%4u/%4zu] %-36s %-10s %-9s %-3s %s\n", r.id + 1,
                  total, r.name.c_str(), r.category.c_str(),
                  farm::job_status_name(r.status), r.verdict(),
                  r.error.c_str());
      std::fflush(stdout);
    }
  };

  farm::Farm f(cfg);
  farm::TriageReport report = f.run(std::move(jobs));

  if (out) {
    std::fprintf(out, "%s\n", farm::summary_jsonl(report.metrics).c_str());
    std::fclose(out);
  }
  if (metrics_out) {
    std::fprintf(metrics_out, "%s\n",
                 farm::metrics_summary_jsonl(report).c_str());
    std::fclose(metrics_out);
  }

  u32 tp = 0, fp = 0, tn = 0, fn = 0;
  for (const auto& r : report.results) {
    std::string v = r.verdict();
    if (v == "TP") ++tp;
    else if (v == "FP") ++fp;
    else if (v == "TN") ++tn;
    else if (v == "FN") ++fn;
  }
  std::printf("\n%s\n", farm::summary_text(report.metrics).c_str());
  std::printf("scoring vs paper ground truth: %u TP, %u FP, %u TN, %u FN\n",
              tp, fp, tn, fn);

  if (cfg.static_prefilter) {
    // Score the static oracle against the same ground truth, then show how
    // static and dynamic verdicts line up per job. The static pass never
    // changes dynamic results; these tables are purely diagnostic.
    u32 stp = 0, sfp = 0, stn = 0, sfn = 0, serr = 0;
    u32 both = 0, dyn_only = 0, sta_only = 0, neither = 0;
    for (const auto& r : report.results) {
      std::string sv = r.static_verdict();
      if (sv == "TP") ++stp;
      else if (sv == "FP") ++sfp;
      else if (sv == "TN") ++stn;
      else if (sv == "FN") ++sfn;
      else ++serr;
      if (r.status == farm::JobStatus::kOk && r.sa_analyzed) {
        if (r.flagged && r.sa_flagged) ++both;
        else if (r.flagged) ++dyn_only;
        else if (r.sa_flagged) ++sta_only;
        else ++neither;
      }
    }
    std::printf("static prefilter vs ground truth: %u TP, %u FP, %u TN, "
                "%u FN%s\n",
                stp, sfp, stn, sfn,
                serr ? " (+ unanalyzed jobs)" : "");
    std::printf("static vs dynamic agreement: %u both-flag, %u dynamic-only, "
                "%u static-only, %u both-clean\n",
                both, dyn_only, sta_only, neither);
  }

  bool clean_run = report.metrics.errors == 0 && report.metrics.timeouts == 0 &&
                   report.metrics.cancelled == 0;
  return clean_run ? 0 : 1;
}
